package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/sysimage"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out)
}

// TestRunCompilePlanAcceptance is the CLI acceptance test for the binary
// plan format: compile a plan from a profile, then require that check and
// scan driven by -plan print byte-identical output to the same commands
// driven by -profile on the same corpus.
func TestRunCompilePlanAcceptance(t *testing.T) {
	training, target := fixture(t)
	tmp := t.TempDir()
	profileFile := filepath.Join(tmp, "profile.json")
	planFile := filepath.Join(tmp, "app.plan")
	if err := runLearn([]string{"-training", training, "-profile", profileFile}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runCompile([]string{"-profile", profileFile, "-plan-out", planFile})
	})
	if !strings.Contains(out, "compiled plan") || !strings.Contains(out, planFile) {
		t.Fatalf("compile output unexpected: %q", out)
	}
	data, err := os.ReadFile(planFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 12 || string(data[:4]) != "ENCP" {
		t.Fatalf("plan file does not start with the ENCP magic (%d bytes)", len(data))
	}

	// check: the binary plan must report exactly what the profile reports.
	checkWith := func(src ...string) string {
		return captureStdout(t, func() error {
			return runCheck(append(src, "-target", target, "-json"))
		})
	}
	fromProfile := checkWith("-profile", profileFile)
	fromPlan := checkWith("-plan", planFile)
	if fromPlan != fromProfile {
		t.Fatalf("check -plan output differs from check -profile\nplan:\n%s\nprofile:\n%s", fromPlan, fromProfile)
	}

	// scan: same fleet, same summary lines.
	targets := t.TempDir()
	images, err := corpus.Training("mysql", 3, 91)
	if err != nil {
		t.Fatal(err)
	}
	images = append(images, corpus.RealWorldCases()[2].Build())
	if err := sysimage.SaveDir(targets, images); err != nil {
		t.Fatal(err)
	}
	scanWith := func(src ...string) string {
		return captureStdout(t, func() error {
			return runScan(append(src, "-targets", targets))
		})
	}
	fromProfile = scanWith("-profile", profileFile)
	fromPlan = scanWith("-plan", planFile)
	if fromPlan != fromProfile {
		t.Fatalf("scan -plan output differs from scan -profile\nplan:\n%s\nprofile:\n%s", fromPlan, fromProfile)
	}
}

// TestRunCompileFromTraining covers the learn-and-compile path: training
// directory straight to a plan file, then a check against it.
func TestRunCompileFromTraining(t *testing.T) {
	training, target := fixture(t)
	planFile := filepath.Join(t.TempDir(), "app.plan")
	if err := runCompile([]string{"-training", training, "-plan-out", planFile}); err != nil {
		t.Fatal(err)
	}
	if err := runCheck([]string{"-plan", planFile, "-target", target, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCompileValidation locks the flag contract: exactly one knowledge
// source, -plan-out required, and -plan mutually exclusive with the other
// check/scan sources.
func TestRunCompileValidation(t *testing.T) {
	training, target := fixture(t)
	if err := runCompile([]string{"-plan-out", "x.plan"}); err == nil {
		t.Fatal("compile without a knowledge source should error")
	}
	if err := runCompile([]string{"-training", training}); err == nil {
		t.Fatal("compile without -plan-out should error")
	}
	if err := runCompile([]string{"-training", training, "-profile", "p.json", "-plan-out", "x.plan"}); err == nil {
		t.Fatal("compile with both -training and -profile should error")
	}
	if err := runCheck([]string{"-plan", "a.plan", "-profile", "b.json", "-target", target}); err == nil {
		t.Fatal("check with both -plan and -profile should error")
	}
	if err := runScan([]string{"-plan", "a.plan", "-training", training, "-targets", "dir"}); err == nil {
		t.Fatal("scan with both -plan and -training should error")
	}
	if err := runCheck([]string{"-plan", filepath.Join(t.TempDir(), "missing.plan"), "-target", target}); err == nil {
		t.Fatal("check with a missing plan file should error")
	}
}
