// Package encore is a from-scratch reproduction of EnCore, the
// misconfiguration detector of Zhang et al. (ASPLOS 2014): "EnCore:
// Exploiting System Environment and Correlation Information for
// Misconfiguration Detection".
//
// EnCore learns best-practice configuration rules from a training set of
// configured system images and checks target systems against them. Two
// information sources distinguish it from value-comparison detectors:
//
//   - Environment integration: configuration values are semantically typed
//     (file path, user, port, size, ...) by a two-step syntactic/semantic
//     inference against the system image, and each typed entry is
//     augmented with environment attributes (owner, kind, permission,
//     address class, ...).
//   - Correlation rules: typed rule templates are instantiated over
//     eligible attribute pairs and validated across the training set, with
//     support, confidence, and entropy filters pruning false rules.
//
// The Framework type bundles the pipeline; Learn produces Knowledge from a
// training set; Check produces a ranked anomaly report for a target image.
//
//	fw := encore.New()
//	k, err := fw.Learn(trainingImages)
//	report, err := fw.Check(k, target)
//	for _, w := range report.Warnings { fmt.Println(w.Rank, w.Message) }
package encore

import (
	"fmt"
	"log/slog"
	"os"

	"repro/internal/advise"
	"repro/internal/assemble"
	"repro/internal/conftypes"
	"repro/internal/custom"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/planio"
	"repro/internal/profile"
	"repro/internal/rules"
	"repro/internal/scan"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// Re-exported types so downstream users work with one import.
type (
	// Image is a captured system image (environment + configuration).
	Image = sysimage.Image
	// Report is a ranked anomaly report.
	Report = detect.Report
	// Warning is one detected anomaly.
	Warning = detect.Warning
	// Rule is one learned correlation rule.
	Rule = rules.Rule
	// Config holds the rule-inference thresholds.
	Config = rules.Config
	// ScanResult is the outcome of a batch target scan.
	ScanResult = scan.Result
	// ScanError is one isolated per-image scan failure.
	ScanError = scan.ScanError
	// Plan is a compiled, immutable check plan shared read-only across
	// scan workers (see CompilePlan).
	Plan = detect.Plan
	// Telemetry records pipeline counters and stage timings.
	Telemetry = telemetry.Recorder
)

// Warning kinds, re-exported from the detector.
const (
	KindName        = detect.KindName
	KindCorrelation = detect.KindCorrelation
	KindType        = detect.KindType
	KindSuspicious  = detect.KindSuspicious
)

// Framework bundles the EnCore pipeline: the data assembler (with its type
// inferencer), the rule-inference engine, and any loaded customization.
type Framework struct {
	Assembler *assemble.Assembler
	Engine    *rules.Engine
}

// New returns a framework with the predefined types (Table 4), the default
// augmenters (Table 5), and the 11 predefined rule templates (Table 6).
func New() *Framework {
	return &Framework{
		Assembler: assemble.New(),
		Engine:    rules.NewEngine(),
	}
}

// LoadCustomization parses a customization file (Section 5.3) and installs
// its types, augmenters, operators, and templates into the framework.
func (f *Framework) LoadCustomization(src string) error {
	c, err := custom.ParseFile(src)
	if err != nil {
		return err
	}
	c.Apply(f.Assembler.Inferencer, f.Assembler, f.Engine)
	return nil
}

// LoadCustomizationFile reads and applies a customization file from disk.
func (f *Framework) LoadCustomizationFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("encore: read customization: %w", err)
	}
	return f.LoadCustomization(string(data))
}

// Knowledge is what Learn produces: the assembled training dataset, the
// learned rules, and the training images (validators may consult their
// environments again during checking).
type Knowledge struct {
	Training *dataset.Dataset
	Rules    []*rules.Rule
	images   map[string]*sysimage.Image

	// state carries the rule engine's per-candidate evidence so AddImages/
	// RetireImages can re-infer incrementally instead of re-sweeping the
	// corpus.
	state rules.InferState
}

// Learn assembles the training images and infers correlation rules.
func (f *Framework) Learn(images []*sysimage.Image) (*Knowledge, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("encore: empty training set")
	}
	ds, err := f.Assembler.AssembleTraining(images)
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*sysimage.Image, len(images))
	for _, im := range images {
		byID[im.ID] = im
	}
	k := &Knowledge{Training: ds, images: byID}
	k.Rules = f.Engine.InferWithState(ds, byID, &k.state)
	return k, nil
}

// AddImages grows the knowledge by a batch of new training images without
// re-learning from scratch: the images are assembled into delta rows with
// frozen attribute types, appended to the dataset (which maintains its
// columnar index by delta), and the rule set is re-inferred incrementally —
// only candidates whose evidence the new rows touch are revalidated. The
// resulting rules are identical to a from-scratch Learn over the combined
// image set with the same frozen types.
func (f *Framework) AddImages(k *Knowledge, images ...*sysimage.Image) error {
	if k == nil {
		return fmt.Errorf("encore: nil knowledge (call Learn first)")
	}
	if len(images) == 0 {
		return nil
	}
	for _, im := range images {
		if _, dup := k.images[im.ID]; dup {
			return fmt.Errorf("encore: image %s already in training set", im.ID)
		}
	}
	added, err := f.Assembler.AssembleDeltaRows(k.Training, images)
	if err != nil {
		return err
	}
	k.Training.AddRows(added...)
	for _, im := range images {
		k.images[im.ID] = im
	}
	k.Rules = f.Engine.InferDelta(k.Training, k.images, &k.state, added, nil)
	return nil
}

// RetireImages removes training images by ID (unknown IDs are ignored) and
// re-infers the rule set incrementally, subtracting only the retired rows'
// evidence. The retired images stay visible to the rule engine during the
// delta inference — a retired row's contribution must be re-validated
// against the same environment it was counted with — and are dropped from
// the knowledge afterwards.
func (f *Framework) RetireImages(k *Knowledge, ids ...string) error {
	if k == nil {
		return fmt.Errorf("encore: nil knowledge (call Learn first)")
	}
	retired := k.Training.RetireRows(ids...)
	if len(retired) == 0 {
		return nil
	}
	k.Rules = f.Engine.InferDelta(k.Training, k.images, &k.state, nil, retired)
	for _, row := range retired {
		delete(k.images, row.SystemID)
	}
	return nil
}

// RuleSet exports the knowledge's rules and attribute types for
// serialization; learned rules can be reused to check many systems.
func (k *Knowledge) RuleSet() *rules.RuleSet {
	return rules.NewRuleSet(k.Rules, k.Training)
}

// Profile exports the complete learned knowledge — attribute types, value
// histograms, and rules — as a portable document. A detector rebuilt from
// the profile (see CheckWithProfile) produces the same reports as one
// holding the live training set, so targets can be checked without
// shipping the training corpus.
func (k *Knowledge) Profile() *profile.Profile {
	return profile.Build(k.Training, k.Rules)
}

// CheckWithProfile checks a target against previously exported knowledge.
func (f *Framework) CheckWithProfile(p *profile.Profile, img *sysimage.Image) (*detect.Report, error) {
	dt := p.Detector()
	dt.Assembler = f.Assembler
	dt.Templates = f.Engine.Templates
	return dt.Check(img)
}

// LoadProfile parses a serialized knowledge profile.
func LoadProfile(data []byte) (*profile.Profile, error) {
	return profile.Unmarshal(data)
}

// Advice is one remediation suggestion for a warning.
type Advice = advise.Advice

// Advise derives remediation advice for a report's warnings, using the
// knowledge's value distributions for "what the fleet does" hints.
func (k *Knowledge) Advise(r *detect.Report) []Advice {
	return advise.New(detect.DatasetView{D: k.Training}).ForReport(r)
}

// RenderAdvice formats advice as a numbered list.
func RenderAdvice(a []Advice) string { return advise.Render(a) }

// Check runs the anomaly detector on a target image and returns a ranked
// report.
func (f *Framework) Check(k *Knowledge, img *sysimage.Image) (*detect.Report, error) {
	if k == nil {
		return nil, fmt.Errorf("encore: nil knowledge (call Learn first)")
	}
	dt := detect.New(k.Training, k.Rules)
	dt.Assembler = f.Assembler
	dt.Templates = f.Engine.Templates
	return dt.Check(img)
}

// Detector returns a configured detector for callers that need to tune it
// (warning limits, template sets) before checking.
func (f *Framework) Detector(k *Knowledge) *detect.Detector {
	dt := detect.New(k.Training, k.Rules)
	dt.Assembler = f.Assembler
	dt.Templates = f.Engine.Templates
	return dt
}

// CompilePlan compiles learned knowledge into an immutable check plan:
// histograms, scores, type checkers, and the misspelling index are
// resolved once, and Plan.Check then runs the four anomaly checks over
// pooled per-image scratch. Reports are identical to Check's; the plan
// snapshots the knowledge, so compile a new one after re-learning.
func (f *Framework) CompilePlan(k *Knowledge) *detect.Plan {
	return f.Detector(k).Compile()
}

// CompilePlanFromProfile compiles a deserialized knowledge profile into a
// check plan (the batch counterpart of CheckWithProfile).
func (f *Framework) CompilePlanFromProfile(p *profile.Profile) *detect.Plan {
	dt := p.Detector()
	dt.Assembler = f.Assembler
	dt.Templates = f.Engine.Templates
	return dt.Compile()
}

// MarshalPlan serializes a compiled plan to the versioned binary plan
// format (see internal/planio). The bytes capture everything the plan
// derived from training — histograms, rules, the type table, prefilter
// signatures — so LoadPlan can rebuild an identical plan without the
// training corpus, a profile, or re-learning.
func (f *Framework) MarshalPlan(p *detect.Plan) []byte {
	rec := f.Assembler.Telemetry
	sp := rec.StartSpan("plan.encode")
	data := planio.Encode(p.Spec())
	sp.SetAttr("bytes", fmt.Sprintf("%d", len(data)))
	sp.End()
	rec.Add(telemetry.CounterPlanEncoded, 1)
	rec.Add(telemetry.CounterPlanEncodedBytes, int64(len(data)))
	return data
}

// LoadPlan decodes a binary plan and rebuilds the live check plan against
// this framework's assembler (for type checkers and target assembly) and
// template set (for rule resolution). This is the millisecond cold-start
// path: no training corpus, no histogram rebuild, no rule re-learning.
func (f *Framework) LoadPlan(data []byte) (*detect.Plan, error) {
	rec := f.Assembler.Telemetry
	sp := rec.StartSpan("plan.load")
	defer sp.End()
	spec, err := planio.Decode(data)
	if err != nil {
		return nil, err
	}
	p, err := detect.NewPlanFromSpec(spec, f.Assembler, f.Engine.Templates)
	if err != nil {
		return nil, err
	}
	rec.Add(telemetry.CounterPlanLoaded, 1)
	rec.Add(telemetry.CounterPlanLoadedBytes, int64(len(data)))
	return p, nil
}

// ScanEngineWithPlan returns a batch scan engine over an already-built
// check plan (typically one rebuilt by LoadPlan), wired to the framework's
// telemetry and logging like ScanEngine.
func (f *Framework) ScanEngineWithPlan(p *detect.Plan) *scan.Engine {
	return &scan.Engine{
		Check:     p.Check,
		Telemetry: f.Assembler.Telemetry,
		Log:       f.Assembler.Log,
	}
}

// Templates returns the framework's active rule templates.
func (f *Framework) Templates() []*templates.Template { return f.Engine.Templates }

// SetTelemetry threads one recorder through the assembler and the rule
// engine, so a Learn/Check run reports its stage timings and counters.
// Pass nil to disable instrumentation again.
func (f *Framework) SetTelemetry(rec *telemetry.Recorder) {
	f.Assembler.Telemetry = rec
	f.Engine.Telemetry = rec
}

// SetLogger threads one structured logger through the assembler and the
// rule engine (scan engines built afterwards inherit it). Pass nil to
// silence pipeline logging again.
func (f *Framework) SetLogger(log *slog.Logger) {
	f.Assembler.Log = log
	f.Engine.Log = log
}

// ScanEngine returns a batch scan engine that checks targets against
// learned knowledge with per-image fault isolation (see internal/scan).
// The knowledge is compiled into a check plan once, shared read-only by
// every worker (reports are identical to per-image Check calls; the
// report-equivalence tests lock this down). The engine inherits the
// assembler's telemetry recorder. Compile a new engine after customizing
// the framework or re-learning.
func (f *Framework) ScanEngine(k *Knowledge) *scan.Engine {
	return &scan.Engine{
		Check:     f.CompilePlan(k).Check,
		Telemetry: f.Assembler.Telemetry,
		Log:       f.Assembler.Log,
	}
}

// ScanEngineWithProfile returns a batch scan engine over a deserialized
// knowledge profile (no training corpus in memory), with the profile
// compiled into a shared check plan like ScanEngine.
func (f *Framework) ScanEngineWithProfile(p *profile.Profile) *scan.Engine {
	return &scan.Engine{
		Check:     f.CompilePlanFromProfile(p).Check,
		Telemetry: f.Assembler.Telemetry,
		Log:       f.Assembler.Log,
	}
}

// TypeOf reports the semantic type learned for an attribute.
func (k *Knowledge) TypeOf(attr string) (conftypes.Type, bool) {
	a, ok := k.Training.Attr(attr)
	if !ok {
		return "", false
	}
	return a.Type, true
}
