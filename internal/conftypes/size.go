package conftypes

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize converts a size literal ("16M", "1g", "8K", "512", "2GB") to a
// byte count. Plain numbers are accepted as raw bytes, matching how MySQL
// and PHP interpret suffix-less size options.
func ParseSize(v string) (int64, bool) {
	s := strings.TrimSpace(v)
	if s == "" {
		return 0, false
	}
	s = strings.TrimSuffix(strings.TrimSuffix(s, "B"), "b")
	mult := int64(1)
	if len(s) > 0 {
		switch s[len(s)-1] {
		case 'K', 'k':
			mult, s = 1<<10, s[:len(s)-1]
		case 'M', 'm':
			mult, s = 1<<20, s[:len(s)-1]
		case 'G', 'g':
			mult, s = 1<<30, s[:len(s)-1]
		case 'T', 't':
			mult, s = 1<<40, s[:len(s)-1]
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n * mult, true
}

// FormatSize renders a byte count with the largest suffix that divides it
// exactly, so ParseSize(FormatSize(n)) == n.
func FormatSize(bytes int64) string {
	switch {
	case bytes >= 1<<40 && bytes%(1<<40) == 0:
		return fmt.Sprintf("%dT", bytes>>40)
	case bytes >= 1<<30 && bytes%(1<<30) == 0:
		return fmt.Sprintf("%dG", bytes>>30)
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return strconv.FormatInt(bytes, 10)
	}
}
