package evalmatrix

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// GridVersion is the schema version stamped into every exported grid
// document. Bump it when cell semantics or the JSON layout change, and
// regenerate the checked-in EVAL_matrix.json (`make eval-matrix`).
const GridVersion = 1

// Cell is one grid cell: the detection quality of one detector
// configuration against one error class on one application population.
//
// Counting model: every victim image carries Injected ground-truth errors
// of the cell's kind. An injection is Detected when at least one finding
// refers to its entry (Injection.Matches); a finding is Matched when it
// refers to at least one injection. Precision = Matched/Findings (the
// fraction of the report an operator should trust), Recall =
// Detected/Injected (the fraction of planted errors surfaced), F1 their
// harmonic mean. Cells where the kind is inapplicable to the population's
// configuration (e.g. size-jump on a file without size-typed values)
// record Injected == 0 and zero rates.
type Cell struct {
	Population string  `json:"population"`
	Config     string  `json:"config"`
	Kind       string  `json:"kind"`
	Victims    int     `json:"victims"`
	Injected   int     `json:"injected"`
	Detected   int     `json:"detected"`
	Findings   int     `json:"findings"`
	Matched    int     `json:"matched"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	F1         float64 `json:"f1"`
}

// Key identifies a cell across grid versions.
func (c Cell) Key() string { return c.Population + "|" + c.Config + "|" + c.Kind }

// FPRate is the fraction of findings not explained by any injection —
// the false-positive side of the regression gate. A cell with no
// findings has a zero false-positive rate.
func (c Cell) FPRate() float64 {
	if c.Findings == 0 {
		return 0
	}
	return round4(float64(c.Findings-c.Matched) / float64(c.Findings))
}

// Grid is the complete evaluation matrix with the options that produced
// it, so a regression gate can re-run the exact same grid.
type Grid struct {
	Version     int      `json:"version"`
	Seed        int64    `json:"seed"`
	TrainingN   int      `json:"trainingN"`
	Victims     int      `json:"victims"`
	PerVictim   int      `json:"perVictim"`
	Populations []string `json:"populations"`
	Configs     []string `json:"configs"`
	Kinds       []string `json:"kinds"`
	Cells       []Cell   `json:"cells"`
}

// JSON serializes the grid as the versioned, indented, newline-terminated
// document `make eval-matrix` checks in. Cells are already in canonical
// (population, config, kind) axis order and all rates are rounded to four
// decimals, so equal grids serialize byte-identically.
func (g *Grid) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a grid document produced by JSON.
func Decode(data []byte) (*Grid, error) {
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("evalmatrix: decode grid: %w", err)
	}
	if g.Version != GridVersion {
		return nil, fmt.Errorf("evalmatrix: grid version %d, want %d (regenerate with `make eval-matrix`)", g.Version, GridVersion)
	}
	return &g, nil
}

// round4 rounds a rate to four decimals so the JSON grid is stable and
// diff-friendly.
func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }

// Render prints the grid as one text table per (population, config)
// block, kinds as rows.
func Render(g *Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evaluation matrix: precision/recall by error class (seed %d, %d training images, %d victims x <=%d injections per cell)\n",
		g.Seed, g.TrainingN, g.Victims, g.PerVictim)
	byKey := make(map[string]Cell, len(g.Cells))
	for _, c := range g.Cells {
		byKey[c.Key()] = c
	}
	for _, pop := range g.Populations {
		for _, cfg := range g.Configs {
			fmt.Fprintf(&b, "\npopulation=%s config=%s\n", pop, cfg)
			fmt.Fprintf(&b, "  %-14s %4s %4s %4s %4s %10s %7s %7s\n",
				"kind", "inj", "det", "fnd", "mat", "precision", "recall", "f1")
			for _, kind := range g.Kinds {
				c, ok := byKey[pop+"|"+cfg+"|"+kind]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "  %-14s %4d %4d %4d %4d %9.0f%% %6.0f%% %7.2f\n",
					c.Kind, c.Injected, c.Detected, c.Findings, c.Matched,
					c.Precision*100, c.Recall*100, c.F1)
			}
		}
	}
	return b.String()
}

// Regression-gate tolerances: a fresh grid may lose this much recall (or
// gain this much false-positive rate) per cell against the checked-in
// grid before the gate fails. Same-seed same-code runs are byte-identical,
// so the slack only absorbs small drift from intentional code changes;
// larger intentional changes regenerate the grid (`make eval-matrix`).
const (
	GateRecallTolerance = 0.10
	GateFPRateTolerance = 0.10
)

// CompareForRegressions checks a freshly computed grid against the
// checked-in base and returns one message per violated cell: recall
// dropped more than GateRecallTolerance, false-positive rate rose more
// than GateFPRateTolerance, or a base cell disappeared. Messages are
// sorted for stable test output; an empty slice means the gate passes.
func CompareForRegressions(base, fresh *Grid) []string {
	freshByKey := make(map[string]Cell, len(fresh.Cells))
	for _, c := range fresh.Cells {
		freshByKey[c.Key()] = c
	}
	var violations []string
	for _, old := range base.Cells {
		now, ok := freshByKey[old.Key()]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: cell missing from fresh grid", old.Key()))
			continue
		}
		if now.Recall < old.Recall-GateRecallTolerance {
			violations = append(violations, fmt.Sprintf("%s: recall %.4f -> %.4f (dropped beyond %.2f tolerance)",
				old.Key(), old.Recall, now.Recall, GateRecallTolerance))
		}
		if now.FPRate() > old.FPRate()+GateFPRateTolerance {
			violations = append(violations, fmt.Sprintf("%s: false-positive rate %.4f -> %.4f (rose beyond %.2f tolerance)",
				old.Key(), old.FPRate(), now.FPRate(), GateFPRateTolerance))
		}
	}
	sort.Strings(violations)
	return violations
}
