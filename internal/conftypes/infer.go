package conftypes

import (
	"strings"

	"repro/internal/sysimage"
)

// Sample is one observed value together with the image it was observed in,
// so semantic verification can consult the right environment.
type Sample struct {
	Value string
	Image *sysimage.Image
}

// Inferencer assigns semantic types to configuration entries. Custom type
// definitions (registered via AddCustom) take priority over the predefined
// ones, in registration order, exactly as the customization interface in
// the paper specifies.
type Inferencer struct {
	custom     []*Def
	predefined []*Def

	// MatchFraction is the minimum fraction of samples whose value must
	// pass the syntactic match for a type to remain a candidate.
	MatchFraction float64
	// VerifyFraction is the minimum fraction of syntactically matching
	// samples that must also pass semantic verification.
	VerifyFraction float64
}

// NewInferencer returns an Inferencer with the predefined types of Table 4
// and the default acceptance thresholds.
func NewInferencer() *Inferencer {
	return &Inferencer{
		predefined:     Predefined(),
		MatchFraction:  0.8,
		VerifyFraction: 0.8,
	}
}

// AddCustom registers a user-defined type; custom types are tried before
// every predefined type, in the order added.
func (inf *Inferencer) AddCustom(def *Def) {
	inf.custom = append(inf.custom, def)
}

// Defs returns all definitions in priority order.
func (inf *Inferencer) Defs() []*Def {
	out := make([]*Def, 0, len(inf.custom)+len(inf.predefined))
	out = append(out, inf.custom...)
	out = append(out, inf.predefined...)
	return out
}

// Def returns the definition for a type name, or nil. Custom defs shadow
// predefined ones, matching the Defs() order; no slice is built — this
// sits on the plan-compile path, once per attribute.
func (inf *Inferencer) Def(t Type) *Def {
	for _, d := range inf.custom {
		if d.Name == t {
			return d
		}
	}
	for _, d := range inf.predefined {
		if d.Name == t {
			return d
		}
	}
	return nil
}

// InferEntry infers the semantic type of a configuration entry from its
// observed samples across the training set.
//
// Booleans are decided first from the entry's complete value set (an entry
// whose every observed value belongs to the boolean lexicon is Boolean —
// including all-0/1 integer entries, reproducing the paper's measured
// false-type source). Then each type definition is tried in priority
// order: syntactic match on the required fraction of samples, followed by
// semantic verification where the type defines one. Entries matching
// nothing degrade to Number (if fully numeric) or String.
func (inf *Inferencer) InferEntry(samples []Sample) Type {
	if len(samples) == 0 {
		return TypeString
	}
	allBool := true
	for _, s := range samples {
		if !IsBooleanWord(s.Value) {
			allBool = false
			break
		}
	}
	if allBool {
		return TypeBoolean
	}
	for _, def := range inf.Defs() {
		matched := 0
		verified := 0
		for _, s := range samples {
			if s.Value == "" || !def.Match(s.Value) {
				continue
			}
			matched++
			if def.Verify == nil || def.Verify(s.Value, s.Image) {
				verified++
			}
		}
		if matched == 0 {
			continue
		}
		nonEmpty := 0
		for _, s := range samples {
			if s.Value != "" {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			continue
		}
		if float64(matched)/float64(nonEmpty) < inf.MatchFraction {
			continue
		}
		if def.Verify != nil && float64(verified)/float64(matched) < inf.VerifyFraction {
			continue
		}
		return def.Name
	}
	numeric := 0
	for _, s := range samples {
		if s.Value == "" {
			continue
		}
		if !reNumber.MatchString(s.Value) {
			return TypeString
		}
		numeric++
	}
	if numeric > 0 {
		return TypeNumber
	}
	return TypeString
}

// InferEntryNamed infers the entry's type like InferEntry and then applies
// entry-name disambiguation for the user/group ambiguity: an account name
// that exists as both a user and a group satisfies the UserName pattern
// first by priority, but when the entry's own name says "group" (Apache's
// Group, MySQL's innodb groups) and every sample verifies as a group, the
// semantic type is GroupName. Entry names carry exactly this kind of
// signal the paper's taxonomy source exploits.
func (inf *Inferencer) InferEntryNamed(name string, samples []Sample) Type {
	t := inf.InferEntry(samples)
	if t != TypeUserName || !strings.Contains(strings.ToLower(name), "group") {
		return t
	}
	for _, s := range samples {
		if s.Value == "" {
			continue
		}
		if s.Image == nil || !s.Image.GroupExists(s.Value) {
			return t
		}
	}
	return TypeGroupName
}

// InferValue infers a type for a single value in the context of one image.
// It is the path the anomaly detector uses when a target entry was never
// seen in training.
func (inf *Inferencer) InferValue(value string, img *sysimage.Image) Type {
	return inf.InferEntry([]Sample{{Value: value, Image: img}})
}

// CheckValue validates a target value against a previously inferred type.
// It returns (syntacticOK, semanticOK). A type with no verifier reports
// semanticOK == syntacticOK. Trivial types always pass.
func (inf *Inferencer) CheckValue(t Type, value string, img *sysimage.Image) (syntacticOK, semanticOK bool) {
	switch t {
	case TypeString, "":
		return true, true
	case TypeBoolean:
		ok := IsBooleanWord(value)
		return ok, ok
	case TypeEnum:
		return true, true
	}
	def := inf.Def(t)
	if def == nil {
		return true, true
	}
	if !def.Match(value) {
		return false, false
	}
	if def.Verify == nil {
		return true, true
	}
	return true, def.Verify(value, img)
}

// LooksLikeRegexOrGlob reports whether a value uses wildcard or regex
// metacharacters. The paper notes such values (index specifications,
// LogFormat patterns) are a main source of inference error; the assembler
// uses this to skip semantic verification for them.
func LooksLikeRegexOrGlob(v string) bool {
	return strings.ContainsAny(v, "*?[]^$()%{}")
}
