// Package study holds the manual-study catalog behind Table 1 of the
// paper: for each of the four studied applications, the examined
// configuration entries annotated with whether the entry's value refers to
// an execution-environment object ("Env-Related") and whether its correct
// setting is correlated with other entries or environment objects
// ("Correlated").
//
// Apache covers the entries of the two main modules (core and mpm), PHP
// covers the core entries, MySQL's entries are a sample of the server
// options. The aggregate counts reproduce Table 1:
//
//	Apache  94 total, 29 (31%) env-related, 42 (46%) correlated
//	MySQL  113 total, 19 (17%) env-related, 31 (27%) correlated
//	PHP     53 total, 16 (30%) env-related, 20 (38%) correlated
//	sshd    57 total, 12 (21%) env-related, 29 (51%) correlated
package study

import "sort"

// Entry is one studied configuration parameter.
type Entry struct {
	App        string
	Name       string
	EnvRelated bool
	Correlated bool
}

// Row is one Table 1 row.
type Row struct {
	App        string
	Total      int
	EnvRelated int
	Correlated int
}

// Catalog returns every studied entry.
func Catalog() []Entry {
	var out []Entry
	out = append(out, apacheEntries()...)
	out = append(out, mysqlEntries()...)
	out = append(out, phpEntries()...)
	out = append(out, sshdEntries()...)
	return out
}

// Table1 aggregates the catalog into the Table 1 rows, in the paper's app
// order.
func Table1() []Row {
	byApp := map[string]*Row{}
	for _, e := range Catalog() {
		r, ok := byApp[e.App]
		if !ok {
			r = &Row{App: e.App}
			byApp[e.App] = r
		}
		r.Total++
		if e.EnvRelated {
			r.EnvRelated++
		}
		if e.Correlated {
			r.Correlated++
		}
	}
	order := []string{"Apache", "MySQL", "PHP", "sshd"}
	rows := make([]Row, 0, len(order))
	for _, app := range order {
		if r, ok := byApp[app]; ok {
			rows = append(rows, *r)
		}
	}
	return rows
}

// Names returns the sorted entry names for one app.
func Names(app string) []string {
	var out []string
	for _, e := range Catalog() {
		if e.App == app {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

// mk expands a compact flag notation: each spec is "name", "name|E",
// "name|C" or "name|EC".
func mk(app string, specs []string) []Entry {
	out := make([]Entry, 0, len(specs))
	for _, s := range specs {
		e := Entry{App: app}
		name := s
		for i := 0; i < len(s); i++ {
			if s[i] == '|' {
				name = s[:i]
				for _, f := range s[i+1:] {
					switch f {
					case 'E':
						e.EnvRelated = true
					case 'C':
						e.Correlated = true
					}
				}
				break
			}
		}
		e.Name = name
		out = append(out, e)
	}
	return out
}
