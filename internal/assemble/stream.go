package assemble

import (
	"strconv"
	"time"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// TargetSink receives the assembled attribute stream of one target image.
// It is the zero-materialization counterpart of AssembleTarget's dataset:
// a compiled check plan implements it over pooled per-worker scratch so a
// batch scan builds no dataset, no attribute index, and no fresh name
// strings per image.
//
// StreamTarget drives the sink in exactly the order the dataset path
// produces attributes: for every entry argument Declare, then Add, then
// the Table 5a augmentations (each Declare+Add); finally the Table 5b
// environment attributes.
type TargetSink interface {
	// Declare announces an attribute before its first Add. augmented marks
	// attributes synthesized from environment data. Declarations repeat
	// (once per occurrence); first-declaration semantics are the sink's
	// responsibility, mirroring dataset.DeclareAttr.
	Declare(name string, t conftypes.Type, augmented bool)
	// Add records one instance value of an attribute.
	Add(name, value string)
	// TypeOf resolves the semantic type of an entry attribute. value is
	// the instance being emitted; AssembleTarget's one-pass type map means
	// the first observed instance decides the type for every later
	// occurrence of the same name, so sinks must memoize their answer.
	TypeOf(name, value string) conftypes.Type
	// InternName canonicalizes a constructed attribute name. The byte
	// slice is only valid during the call; sinks return a stable string
	// (typically from an interning table keyed by the training attribute
	// names, so repeated names across a corpus cost no allocation).
	InternName(name []byte) string
}

// appendEntryName appends the canonical attribute name of one entry
// argument to buf — the byte-building twin of attrName, kept in lockstep
// with it ("app:section/key" or "app:key", plus "/argN" for
// multi-argument entries).
func appendEntryName(buf []byte, app string, e *entryRef, argIdx, argCount int) []byte {
	buf = append(buf, app...)
	buf = append(buf, ':')
	if e.section != "" {
		buf = append(buf, e.section...)
		buf = append(buf, '/')
	}
	buf = append(buf, e.key...)
	if argCount > 1 {
		buf = append(buf, "/arg"...)
		buf = strconv.AppendInt(buf, int64(argIdx+1), 10)
	}
	return buf
}

// entryRef carries the name parts of one parsed entry without forcing the
// confparse import into the name builder's signature.
type entryRef struct{ section, key string }

// StreamTarget parses one target image and streams its assembled
// attributes — configuration entries, Table 5a augmentations, Table 5b
// environment attributes — into sink, without materializing a dataset.
// Attribute order, names, types, and values are identical to what
// AssembleTarget would have placed in its single row; the difference is
// purely allocational. It is the per-image fast path of the compiled
// check plan (internal/detect.Plan).
func (a *Assembler) StreamTarget(img *sysimage.Image, sink TargetSink) error {
	start := time.Now()
	pi, err := parseOne(img)
	a.Telemetry.ObserveDur(telemetry.HistImageParse, time.Since(start))
	if err != nil {
		return err
	}
	a.Telemetry.Add(telemetry.CounterImagesParsed, 1)
	a.Telemetry.Add(telemetry.CounterFilesParsed, int64(len(img.ConfigFiles)))

	buf := make([]byte, 0, 96)
	for _, f := range pi.files {
		for _, e := range f.Entries {
			ref := entryRef{section: e.Section, key: e.Key}
			if len(e.Values) == 0 {
				// Bare flags carry the implicit value "on", exactly like
				// entryValues.
				buf = appendEntryName(buf[:0], f.App, &ref, 0, 1)
				buf = a.streamOne(buf, sink, sink.InternName(buf), "on", img)
				continue
			}
			for i, v := range e.Values {
				buf = appendEntryName(buf[:0], f.App, &ref, i, len(e.Values))
				buf = a.streamOne(buf, sink, sink.InternName(buf), v, img)
			}
		}
	}
	for _, env := range a.envAttrs {
		if v, ok := env.Compute(img); ok {
			sink.Declare(env.Name, env.Type, true)
			sink.Add(env.Name, v)
		}
	}
	return nil
}

// streamOne emits one entry attribute instance and its augmentations,
// returning the (possibly grown) scratch buffer.
func (a *Assembler) streamOne(buf []byte, sink TargetSink, name, value string, img *sysimage.Image) []byte {
	t := sink.TypeOf(name, value)
	sink.Declare(name, t, false)
	sink.Add(name, value)
	if a.SkipPatternValues && conftypes.LooksLikeRegexOrGlob(value) {
		return buf
	}
	for _, aug := range a.augmenters[t] {
		v, ok := aug.Compute(value, img)
		if !ok {
			continue
		}
		buf = append(buf[:0], name...)
		buf = append(buf, '.')
		buf = append(buf, aug.Suffix...)
		augName := sink.InternName(buf)
		sink.Declare(augName, aug.Type, true)
		sink.Add(augName, v)
	}
	return buf
}
