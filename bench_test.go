package encore

// The benchmark harness regenerates every table of the paper's evaluation
// (BenchmarkTableN, one per table) and measures the ablations DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Table benches report the headline quantity of their table as a custom
// metric alongside timing, so a bench run doubles as a results summary.

import (
	"fmt"
	"runtime"
	"testing"

	"context"
	"repro/internal/assemble"
	"repro/internal/baseline"
	"repro/internal/conftypes"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"time"

	"repro/internal/eval"
	"repro/internal/fleet"
	"repro/internal/inject"
	"repro/internal/mining"
	"repro/internal/rules"
	"repro/internal/scan"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

const benchSeed = 1

func BenchmarkTable1Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.Table1()
		if len(rows) != 4 {
			b.Fatal("study rows")
		}
	}
	b.ReportMetric(float64(len(eval.Table1())), "apps")
}

func BenchmarkTable2AttributeGrowth(b *testing.B) {
	var last []eval.Table2Row
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	total := 0
	for _, r := range last {
		total += r.Binomial
	}
	b.ReportMetric(float64(total), "binomial-attrs")
}

func BenchmarkTable3MiningScalability(b *testing.B) {
	oom := 0
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table3(benchSeed, nil, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		oom = 0
		for _, r := range rows {
			if r.OOM {
				oom++
			}
		}
	}
	b.ReportMetric(float64(oom), "oom-runs")
}

func BenchmarkTable8InjectionStudy(b *testing.B) {
	var rows []eval.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	detected := 0
	for _, r := range rows {
		detected += r.EnCore
	}
	b.ReportMetric(float64(detected), "encore-detected")
}

func BenchmarkTable9RealWorldCases(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table9(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for _, r := range rows {
			if r.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "cases-detected")
}

func BenchmarkTable10NewMisconfigurations(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Total
		}
	}
	b.ReportMetric(float64(total), "detections")
}

func BenchmarkTable11TypeInference(b *testing.B) {
	var rows []eval.Table11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table11(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	wrong := 0
	for _, r := range rows {
		wrong += r.FalseTypes + r.Undetected
	}
	b.ReportMetric(float64(wrong), "inference-errors")
}

func BenchmarkTable12RuleInference(b *testing.B) {
	var rows []eval.Table12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table12(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, r := range rows {
		total += r.DetectedRules
	}
	b.ReportMetric(float64(total), "rules")
}

func BenchmarkTable13EntropyFilter(b *testing.B) {
	var rows []eval.Table13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table13(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reduced := 0
	for _, r := range rows {
		reduced += r.FPReduced
	}
	b.ReportMetric(float64(reduced), "fp-reduced")
}

// ---- pipeline stage benchmarks ----

func benchCorpus(b *testing.B, app string, n int) ([]*Image, *dataset.Dataset) {
	b.Helper()
	images, err := corpus.Training(app, n, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := assemble.New().AssembleTraining(images)
	if err != nil {
		b.Fatal(err)
	}
	return images, ds
}

func BenchmarkAssembleTraining(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assemble.New().AssembleTraining(images); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleInferenceParallel(b *testing.B) {
	images, ds := benchCorpus(b, "apache", 60)
	byID := corpus.ByID(images)
	eng := rules.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Infer(ds, byID)
	}
}

func BenchmarkRuleInferenceSerial(b *testing.B) {
	images, ds := benchCorpus(b, "apache", 60)
	byID := corpus.ByID(images)
	eng := rules.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InferSerial(ds, byID)
	}
}

// BenchmarkRuleInferenceIndexed measures the columnar-index inference path
// (bitset support pruning, co-occurrence sweeps, memoized entropies) on a
// corpus-scaling axis, so bench runs track how inference scales with fleet
// size, not just its apache/60 headline. The images=60 case is the number
// to compare against BenchmarkRuleInferenceParallel's pre-index history.
func BenchmarkRuleInferenceIndexed(b *testing.B) {
	for _, n := range []int{60, 120, 240} {
		b.Run(fmt.Sprintf("images=%d", n), func(b *testing.B) {
			images, ds := benchCorpus(b, "apache", n)
			byID := corpus.ByID(images)
			eng := rules.NewEngine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Infer(ds, byID)
			}
			b.ReportMetric(float64(eng.LastStats.Candidates), "candidates")
		})
	}
}

func BenchmarkDetectorCheck(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		b.Fatal(err)
	}
	target := corpus.RealWorldCases()[2].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Check(k, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineCheck(b *testing.B) {
	images, ds := benchCorpus(b, "mysql", 60)
	_ = images
	target := corpus.RealWorldCases()[2].Build()
	bl := baseline.NewBaselineEnv(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Check(target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInjection(b *testing.B) {
	images, err := corpus.Training("apache", 1, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := images[0].Clone()
		if _, err := inject.New(int64(i)).Inject(victim, "apache", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations ----

// BenchmarkAblationTypedCandidates measures the typed candidate space; its
// untyped counterpart shows what template instantiation would cost without
// type-based attribute selection — the scalability argument of Section 5.1.
func BenchmarkAblationTypedCandidates(b *testing.B) {
	_, ds := benchCorpus(b, "apache", 60)
	eng := rules.NewEngine()
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = eng.CandidateCount(ds)
	}
	b.ReportMetric(float64(n), "candidates")
}

func BenchmarkAblationUntypedCandidates(b *testing.B) {
	_, ds := benchCorpus(b, "apache", 60)
	// Erase semantic types: every attribute becomes eligible for every
	// numeric/string slot, the worst case the paper's typed selection
	// avoids.
	untyped := dataset.New()
	for _, a := range ds.Attributes() {
		untyped.DeclareAttr(a.Name, conftypes.TypeNumber, false)
	}
	eng := rules.NewEngine()
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = eng.CandidateCount(untyped)
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkAblationSyntacticOnly measures type-inference accuracy without
// the semantic verification step (crude syntactic guesses only).
func BenchmarkAblationSyntacticOnly(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	inf := conftypes.NewInferencer()
	// Strip every semantic verifier.
	noVerify := conftypes.NewInferencer()
	stripped := 0
	for _, d := range noVerify.Defs() {
		if d.Verify != nil {
			d.Verify = nil
			stripped++
		}
	}
	img := images[0]
	values := []string{"/var/lib/mysql", "mysql", "3306", "16M", "10.0.0.5", "no-such-user"}
	b.ResetTimer()
	misclassified := 0
	for i := 0; i < b.N; i++ {
		misclassified = 0
		for _, v := range values {
			if inf.InferValue(v, img) != noVerify.InferValue(v, img) {
				misclassified++
			}
		}
	}
	b.ReportMetric(float64(misclassified), "divergent-types")
}

// ---- mining algorithm comparison ----

func miningWorkload(b *testing.B, app string) [][]int {
	b.Helper()
	_, ds := benchCorpus(b, app, 0x0+60)
	disc := ds.Discretize(nil)
	return disc.Transactions
}

func BenchmarkMiningApriori(b *testing.B) {
	txns := miningWorkload(b, "php")
	m := &mining.Apriori{MaxSets: 100_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.Mine(txns, len(txns)*8/10)
		if err != nil && err != mining.ErrBudgetExceeded {
			b.Fatal(err)
		}
	}
}

func BenchmarkMiningFPGrowth(b *testing.B) {
	txns := miningWorkload(b, "php")
	m := &mining.FPGrowth{MaxSets: 100_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.Mine(txns, len(txns)*8/10)
		if err != nil && err != mining.ErrBudgetExceeded {
			b.Fatal(err)
		}
	}
}

// ---- extension studies ----

// BenchmarkExtensionEnvInjection measures the environment-error study: the
// pure baseline is structurally blind, EnCore is not.
func BenchmarkExtensionEnvInjection(b *testing.B) {
	var rows []eval.EnvInjectionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.ExtensionEnvInjection(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	enc := 0
	for _, r := range rows {
		enc += r.EnCore
	}
	b.ReportMetric(float64(enc), "encore-detected")
}

// BenchmarkExtensionCrossComponent measures LAMP cross-component learning
// and detection (the paper's future-work extension).
func BenchmarkExtensionCrossComponent(b *testing.B) {
	var res *eval.CrossComponentResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.ExtensionCrossComponent(40, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CrossRules), "cross-rules")
}

// BenchmarkProfileCheck measures checking from a deserialized knowledge
// profile (no training corpus in memory).
func BenchmarkProfileCheck(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		b.Fatal(err)
	}
	data, err := k.Profile().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	p, err := LoadProfile(data)
	if err != nil {
		b.Fatal(err)
	}
	target := corpus.RealWorldCases()[2].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.CheckWithProfile(p, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresholdSweep measures the filter-threshold
// sensitivity sweep (confidence / support / entropy, 15 points).
func BenchmarkAblationThresholdSweep(b *testing.B) {
	var points []eval.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.ThresholdSweep("mysql", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, p := range points {
		if p.Precision() > best {
			best = p.Precision()
		}
	}
	b.ReportMetric(best*100, "best-precision-%")
}

// BenchmarkAdvise measures remediation-advice derivation for a report.
func BenchmarkAdvise(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		b.Fatal(err)
	}
	target := corpus.RealWorldCases()[2].Build()
	report, err := fw.Check(k, target)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(k.Advise(report))
	}
	b.ReportMetric(float64(n), "suggestions")
}

// ---- concurrency benchmarks ----

// BenchmarkAssembleTrainingSerial / Parallel measure the assembly worker
// pool against the single-threaded reference on the same corpus, so bench
// runs track the parallel-assembly speedup.
func BenchmarkAssembleTrainingSerial(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	asm := assemble.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.AssembleTrainingSerial(images); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleTrainingParallel(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	asm := assemble.New() // Workers 0 = NumCPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.AssembleTraining(images); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScanFleet learns once and returns a target fleet for the batch
// scan benchmarks.
func benchScanFleet(b *testing.B) (*Framework, *Knowledge, []*Image) {
	b.Helper()
	training, err := corpus.Training("mysql", 30, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		b.Fatal(err)
	}
	targets, err := corpus.Training("mysql", 32, benchSeed+9)
	if err != nil {
		b.Fatal(err)
	}
	return fw, k, targets
}

// BenchmarkBatchScanWorkers1 / NumCPU measure the batch scan engine at
// pool sizes 1 and NumCPU over the same fleet.
func BenchmarkBatchScanWorkers1(b *testing.B) {
	fw, k, targets := benchScanFleet(b)
	eng := fw.ScanEngine(k)
	eng.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Scan(targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchScanWorkersNumCPU(b *testing.B) {
	fw, k, targets := benchScanFleet(b)
	eng := fw.ScanEngine(k) // Workers 0 = NumCPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Scan(targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchScanWorkers records the worker-scaling surface of the
// batch scan: one sub-benchmark per (corpus size, pool size) point. The
// corpus-size axis exists because a 32-image fleet finishes too fast for
// the workers axis to discriminate (its 1-worker and NumCPU-worker points
// used to report identical ns/op); the 1k and 10k points replicate the
// loaded images by pointer — Plan.Check is read-only — so task count
// scales without corpus memory, and parallel speedup (or a regression in
// it) is visible in ns/image.
func BenchmarkBatchScanWorkers(b *testing.B) {
	fw, k, targets := benchScanFleet(b)
	eng := fw.ScanEngine(k)
	axis := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		axis = append(axis, n)
	}
	for _, size := range []int{32, 1000, 10000} {
		images := make([]*Image, size)
		for i := range images {
			images[i] = targets[i%len(targets)]
		}
		for _, w := range axis {
			b.Run(fmt.Sprintf("images=%d/workers=%d", size, w), func(b *testing.B) {
				eng.Workers = w
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Scan(images); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(size), "ns/image")
			})
		}
	}
}

// BenchmarkFleetScan measures the sharded coordinator over synthetic
// fleets one, two, and three orders of magnitude past the corpus bench:
// every image streams through the full decode + check path. Alongside
// ns/image it reports the runtime sampler's peak heap — the constant-
// memory acceptance number: the 100k point must hold within 1.5× of the
// 10k point — and the steal rate.
func BenchmarkFleetScan(b *testing.B) {
	fw, k, targets := benchScanFleet(b)
	eng := fw.ScanEngine(k)
	for _, size := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("images=%d", size), func(b *testing.B) {
			src, err := fleet.NewSyntheticSource(targets[:4], size)
			if err != nil {
				b.Fatal(err)
			}
			var peak uint64
			var steals int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := telemetry.NewSampler(2*time.Millisecond, 1<<15)
				s.Start()
				coord := &fleet.Coordinator{Opts: fleet.Options{Check: eng.Check, Shards: 4}}
				stats, err := coord.Run(context.Background(), src, func(int, scan.Item) {})
				s.Stop()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Images != int64(size) {
					b.Fatalf("images = %d, want %d", stats.Images, size)
				}
				steals += stats.Steals
				for _, sm := range s.Samples() {
					if sm.HeapBytes > peak {
						peak = sm.HeapBytes
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(size), "ns/image")
			b.ReportMetric(float64(peak), "peak-heap-bytes")
			b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
		})
	}
}

// BenchmarkPlanCheck measures one compiled-plan check per op — the
// per-image hot path of the batch scan, to be read against
// BenchmarkDetectorCheck (the legacy per-image detector on the same
// corpus and target).
func BenchmarkPlanCheck(b *testing.B) {
	images, err := corpus.Training("mysql", 60, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		b.Fatal(err)
	}
	plan := fw.CompilePlan(k)
	target := corpus.RealWorldCases()[2].Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Check(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline prints the paper's headline comparison as a benchmark:
// EnCore vs the baselines on the injection study.
func BenchmarkHeadline(b *testing.B) {
	var rows []eval.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	enc, base := 0, 0
	for _, r := range rows {
		enc += r.EnCore
		base += r.Baseline
	}
	if base > 0 {
		b.ReportMetric(float64(enc)/float64(base), "improvement-x")
	}
	b.Logf("\n%s", eval.RenderTable8(rows))
	_ = fmt.Sprint()
}

// BenchmarkPlanColdStart measures the three ways to get a usable detector
// on a fresh process, on the same 32-image corpus: decoding a compiled
// binary plan, compiling a plan from a deserialized JSON profile, and
// re-learning from the raw training images. The binary path is the one
// the scan CLI takes with -plan; the sub-benchmark ratios are the point
// of the format.
func BenchmarkPlanColdStart(b *testing.B) {
	images, err := corpus.Training("mysql", 32, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(images)
	if err != nil {
		b.Fatal(err)
	}
	planBytes := fw.MarshalPlan(fw.CompilePlan(k))
	profileBytes, err := k.Profile().Marshal()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("binary-load", func(b *testing.B) {
		b.SetBytes(int64(len(planBytes)))
		for i := 0; i < b.N; i++ {
			if _, err := fw.LoadPlan(planBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile-from-profile", func(b *testing.B) {
		b.SetBytes(int64(len(profileBytes)))
		for i := 0; i < b.N; i++ {
			p, err := LoadProfile(profileBytes)
			if err != nil {
				b.Fatal(err)
			}
			if fw.CompilePlanFromProfile(p) == nil {
				b.Fatal("nil plan")
			}
		}
	})
	b.Run("full-relearn", func(b *testing.B) {
		// Like the other two arms, start from serialized bytes: a real
		// re-learn cold start parses the training snapshots before it can
		// assemble, infer, and compile.
		raw := make([][]byte, len(images))
		for i, im := range images {
			data, err := im.MarshalJSONIndent()
			if err != nil {
				b.Fatal(err)
			}
			raw[i] = data
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			imgs := make([]*sysimage.Image, len(raw))
			for j, data := range raw {
				img, err := sysimage.LoadJSON(data)
				if err != nil {
					b.Fatal(err)
				}
				imgs[j] = img
			}
			kk, err := New().Learn(imgs)
			if err != nil {
				b.Fatal(err)
			}
			if fw.CompilePlan(kk) == nil {
				b.Fatal("nil plan")
			}
		}
	})
}

// BenchmarkIncrementalInfer compares re-inferring rules after a two-image
// fleet change: InferDelta against a from-scratch Infer over the same
// rows.
func BenchmarkIncrementalInfer(b *testing.B) {
	images, err := corpus.Training("mysql", 32, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	delta, err := corpus.Training("mysql", 2, benchSeed+500)
	if err != nil {
		b.Fatal(err)
	}
	for i, im := range delta {
		im.ID = fmt.Sprintf("delta-%d", i)
	}

	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fw := New()
			k, err := fw.Learn(images)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := fw.AddImages(k, delta...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		all := append(append([]*sysimage.Image(nil), images...), delta...)
		for i := 0; i < b.N; i++ {
			if _, err := New().Learn(all); err != nil {
				b.Fatal(err)
			}
		}
	})
}
