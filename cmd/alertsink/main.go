// Command alertsink is a minimal webhook receiver for exercising the
// alerting pipeline end to end: it accepts POSTs on any path and appends
// one JSONL record per delivery — the propagated X-Request-Id and
// X-Encore-Plan-Version headers plus the raw alert payload — so smoke
// tests can grep what an operator's real webhook endpoint would have
// received.
//
//	alertsink [-addr HOST:PORT] [-addr-file FILE] [-out FILE]
//
// SIGTERM and SIGINT exit 0 after in-flight deliveries complete.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (use :0 for a random port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	out := flag.String("out", "", "append received deliveries as JSONL to this file (default stdout)")
	flag.Parse()
	if err := run(*addr, *addrFile, *out); err != nil {
		fmt.Fprintln(os.Stderr, "alertsink:", err)
		os.Exit(1)
	}
}

// delivery is one recorded webhook POST: the provenance headers the
// notifier sets, then the alert document verbatim.
type delivery struct {
	Path        string          `json:"path"`
	RequestID   string          `json:"requestId"`
	PlanVersion string          `json:"planVersion"`
	Alert       json.RawMessage `json:"alert"`
}

func run(addr, addrFile, out string) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	srv := &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil || !json.Valid(body) {
			http.Error(rw, "body must be JSON", http.StatusBadRequest)
			return
		}
		line, err := json.Marshal(delivery{
			Path:        r.URL.Path,
			RequestID:   r.Header.Get("X-Request-Id"),
			PlanVersion: r.Header.Get("X-Encore-Plan-Version"),
			Alert:       body,
		})
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		mu.Lock()
		_, werr := w.Write(append(line, '\n'))
		mu.Unlock()
		if werr != nil {
			http.Error(rw, werr.Error(), http.StatusInternalServerError)
			return
		}
		rw.WriteHeader(http.StatusNoContent)
	})}

	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "alertsink: listening on", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sigs:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
