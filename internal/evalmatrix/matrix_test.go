package evalmatrix

import (
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/telemetry"
)

// smallOpts is the smoke-grid shape used across tests: 2 populations × 3
// kinds × 2 configs, small corpora.
func smallOpts(seed int64) Options {
	return Options{
		Seed:        seed,
		TrainingN:   12,
		Victims:     2,
		PerVictim:   3,
		Populations: []string{"apache", "mysql"},
		Configs:     []string{"plan-default", "baseline"},
		Kinds:       []inject.Kind{inject.KindNameTypo, inject.KindNumeric, inject.KindPathBreak},
	}
}

// TestCellSeedDerivation pins the per-cell seed derivation: changing it
// silently changes every cell's victims and invalidates the checked-in
// grid, so it must not drift by accident.
func TestCellSeedDerivation(t *testing.T) {
	pins := []struct {
		root int64
		pop  string
		kind inject.Kind
		want int64
	}{
		{1, "apache", inject.KindNameTypo, 6246555478203132742},
		{1, "lamp", inject.KindSectionMove, 5514037411912330882},
		{42, "apache", inject.KindNameTypo, -4783182572179731423},
		{42, "lamp", inject.KindSectionMove, -6364912180842886683},
	}
	for _, p := range pins {
		if got := CellSeed(p.root, p.pop, p.kind); got != p.want {
			t.Errorf("CellSeed(%d, %q, %q) = %d, want %d", p.root, p.pop, p.kind, got, p.want)
		}
	}
	// Configs must not affect the seed — only (root, population, kind) do.
	if CellSeed(1, "apache", inject.KindNameTypo) == CellSeed(1, "apache", inject.KindNumeric) {
		t.Error("different kinds produced the same cell seed")
	}
	if CellSeed(1, "apache", inject.KindNameTypo) == CellSeed(1, "mysql", inject.KindNameTypo) {
		t.Error("different populations produced the same cell seed")
	}
	if CellSeed(1, "apache", inject.KindNameTypo) == CellSeed(2, "apache", inject.KindNameTypo) {
		t.Error("different roots produced the same cell seed")
	}
}

// TestSmallGridShape runs the smoke grid and checks the structural
// invariants every grid must satisfy.
func TestSmallGridShape(t *testing.T) {
	rec := telemetry.New()
	opts := smallOpts(1)
	opts.Telemetry = rec
	grid, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Version != GridVersion {
		t.Errorf("grid version %d, want %d", grid.Version, GridVersion)
	}
	want := len(opts.Populations) * len(opts.Configs) * len(opts.Kinds)
	if len(grid.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(grid.Cells), want)
	}
	// Cells arrive in canonical axis order regardless of scheduling.
	i := 0
	for _, pop := range grid.Populations {
		for _, cfg := range grid.Configs {
			for _, kind := range grid.Kinds {
				c := grid.Cells[i]
				if c.Population != pop || c.Config != cfg || c.Kind != kind {
					t.Fatalf("cell %d is %s, want %s|%s|%s", i, c.Key(), pop, cfg, kind)
				}
				i++
			}
		}
	}
	for _, c := range grid.Cells {
		if c.Detected > c.Injected {
			t.Errorf("%s: detected %d > injected %d", c.Key(), c.Detected, c.Injected)
		}
		if c.Matched > c.Findings {
			t.Errorf("%s: matched %d > findings %d", c.Key(), c.Matched, c.Findings)
		}
		if c.Precision < 0 || c.Precision > 1 || c.Recall < 0 || c.Recall > 1 || c.F1 < 0 || c.F1 > 1 {
			t.Errorf("%s: rates out of range: %+v", c.Key(), c)
		}
	}
	// The matrix must detect *something* on the EnCore config — a grid of
	// zeros means the harness is wired wrong.
	total := 0
	for _, c := range grid.Cells {
		if c.Config == "plan-default" {
			total += c.Detected
		}
	}
	if total == 0 {
		t.Error("plan-default detected nothing across the whole smoke grid")
	}
	if rec.Counter(telemetry.CounterMatrixCells) != int64(want) {
		t.Errorf("matrix cell counter = %d, want %d", rec.Counter(telemetry.CounterMatrixCells), want)
	}
	if rec.Counter(telemetry.CounterMatrixInjections) == 0 {
		t.Error("matrix injection counter never advanced")
	}
}

// TestPlanLegacyCellEquivalence asserts the compiled plan and the legacy
// detector produce identical cells at identical thresholds — the
// report-equivalence property surfaced at grid level.
func TestPlanLegacyCellEquivalence(t *testing.T) {
	opts := smallOpts(7)
	opts.Configs = []string{"plan-default", "legacy-default"}
	grid, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Cell)
	for _, c := range grid.Cells {
		byKey[c.Key()] = c
	}
	for _, c := range grid.Cells {
		if c.Config != "plan-default" {
			continue
		}
		o := byKey[c.Population+"|legacy-default|"+c.Kind]
		if c.Injected != o.Injected || c.Detected != o.Detected || c.Findings != o.Findings || c.Matched != o.Matched {
			t.Errorf("plan/legacy cells diverge for %s|%s: %+v vs %+v", c.Population, c.Kind, c, o)
		}
	}
}

// TestUnknownAxes checks that bad axis filters fail loudly instead of
// producing an empty grid.
func TestUnknownAxes(t *testing.T) {
	if _, err := Run(Options{Populations: []string{"nginx"}}); err == nil || !strings.Contains(err.Error(), "unknown population") {
		t.Errorf("unknown population: got err %v", err)
	}
	if _, err := Run(Options{Configs: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "unknown config") {
		t.Errorf("unknown config: got err %v", err)
	}
}

// TestGridJSONRoundTrip pins the JSON codec: encode → decode preserves
// the grid, and a version mismatch is rejected with a regeneration hint.
func TestGridJSONRoundTrip(t *testing.T) {
	grid, err := Run(smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(grid.Cells) || back.Seed != grid.Seed || back.TrainingN != grid.TrainingN {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, grid)
	}
	for i := range grid.Cells {
		if back.Cells[i] != grid.Cells[i] {
			t.Errorf("cell %d round-trip mismatch: %+v vs %+v", i, back.Cells[i], grid.Cells[i])
		}
	}
	bad := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := Decode([]byte(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch: got err %v", err)
	}
}

// TestCompareForRegressions exercises the gate logic on fabricated grids.
func TestCompareForRegressions(t *testing.T) {
	base := &Grid{Cells: []Cell{
		{Population: "apache", Config: "plan-default", Kind: "name-typo", Injected: 10, Detected: 9, Findings: 10, Matched: 9, Recall: 0.9, Precision: 0.9},
		{Population: "apache", Config: "baseline", Kind: "name-typo", Injected: 10, Detected: 0, Findings: 0, Matched: 0},
	}}
	same := &Grid{Cells: append([]Cell(nil), base.Cells...)}
	if v := CompareForRegressions(base, same); len(v) != 0 {
		t.Errorf("identical grids should pass the gate, got %v", v)
	}
	// Recall collapse beyond tolerance fails.
	worse := &Grid{Cells: append([]Cell(nil), base.Cells...)}
	worse.Cells[0].Detected, worse.Cells[0].Recall = 5, 0.5
	v := CompareForRegressions(base, worse)
	if len(v) != 1 || !strings.Contains(v[0], "recall") {
		t.Errorf("recall drop should fail the gate, got %v", v)
	}
	// False-positive surge beyond tolerance fails.
	noisy := &Grid{Cells: append([]Cell(nil), base.Cells...)}
	noisy.Cells[0].Findings, noisy.Cells[0].Precision = 30, 0.3
	v = CompareForRegressions(base, noisy)
	if len(v) != 1 || !strings.Contains(v[0], "false-positive") {
		t.Errorf("FP surge should fail the gate, got %v", v)
	}
	// Drift inside the tolerance passes.
	drift := &Grid{Cells: append([]Cell(nil), base.Cells...)}
	drift.Cells[0].Recall = 0.85
	if v := CompareForRegressions(base, drift); len(v) != 0 {
		t.Errorf("in-tolerance drift should pass, got %v", v)
	}
	// A vanished cell fails.
	missing := &Grid{Cells: base.Cells[:1]}
	v = CompareForRegressions(base, missing)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("missing cell should fail the gate, got %v", v)
	}
}
