// Package conftypes implements EnCore's semantic type system for
// configuration values (Table 4 of the paper).
//
// A configuration value is not an arbitrary string: it usually names an
// object in the executing environment — a file path, a user, a port, a
// size. The package infers a semantic type per configuration entry with a
// two-step process: a cheap *syntactic match* (regular-expression-style
// pattern) proposes candidate types, and a heavyweight *semantic
// verification* validates the proposal against the system image (does the
// path exist? is the user in /etc/passwd? is the port registered?). The
// first step prunes improbable types so inference stays fast; the second
// guarantees accuracy.
package conftypes

import (
	"regexp"
	"strconv"
	"strings"

	"repro/internal/sysimage"
)

// Type names a semantic configuration-value type.
type Type string

// The predefined types of Table 4, plus the auxiliary types used by
// augmented attributes (Enum, Permission).
const (
	TypeFilePath        Type = "FilePath"
	TypePartialFilePath Type = "PartialFilePath"
	TypeFileName        Type = "FileName"
	TypeUserName        Type = "UserName"
	TypeGroupName       Type = "GroupName"
	TypeIPAddress       Type = "IPAddress"
	TypePortNumber      Type = "PortNumber"
	TypeNumber          Type = "Number"
	TypeURL             Type = "URL"
	TypeMIMEType        Type = "MIMEType"
	TypeCharset         Type = "Charset"
	TypeLanguage        Type = "Language"
	TypeSize            Type = "Size"
	TypeBoolean         Type = "Boolean"
	TypeString          Type = "String"
	TypeEnum            Type = "Enum"
	TypePermission      Type = "Permission"
)

// IsTrivial reports whether the type carries no environment semantics
// (String/Number in the paper's Table 11 terminology).
func (t Type) IsTrivial() bool {
	return t == TypeString || t == TypeNumber || t == ""
}

// Def describes one inferable type: its name, the syntactic pattern, and an
// optional semantic verifier consulting the system image. A nil Verify
// means the type has no external reference (N/A rows in Table 4).
type Def struct {
	Name   Type
	Match  func(value string) bool
	Verify func(value string, img *sysimage.Image) bool
}

var (
	reIPv4       = regexp.MustCompile(`^\d{1,3}(\.\d{1,3}){3}$`)
	reIPv6       = regexp.MustCompile(`^[0-9a-fA-F:]+:[0-9a-fA-F:]*$`)
	reNumber     = regexp.MustCompile(`^-?[0-9]+(\.[0-9]+)?$`)
	reSize       = regexp.MustCompile(`^[0-9]+[KMGTkmgt][Bb]?$`)
	reURL        = regexp.MustCompile(`^[a-z][a-z0-9+.-]*://.+$`)
	reFilePath   = regexp.MustCompile(`^/[^\s]*$`)
	rePartialFP  = regexp.MustCompile(`^[^/\s]+(/[^/\s]+)+$`)
	reFileName   = regexp.MustCompile(`^[\w.-]+\.[\w-]+$`)
	reIdent      = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_-]*$`)
	reMIME       = regexp.MustCompile(`^[\w-]+/[\w.+-]+$`)
	rePermission = regexp.MustCompile(`^0[0-7]{3}$`)
)

// booleanLexicon is the value set that marks Boolean entries. It includes
// "0"/"1", which — exactly as in the paper — makes integer entries whose
// training values happen to all be 0 or 1 infer as Boolean (a measured
// false-type source in Table 11).
var booleanLexicon = map[string]bool{
	"on": true, "off": true, "true": true, "false": true,
	"yes": true, "no": true, "0": true, "1": true,
	"enabled": true, "disabled": true, "none": true,
}

// IsBooleanWord reports whether the value belongs to the boolean lexicon.
func IsBooleanWord(v string) bool {
	return booleanLexicon[strings.ToLower(v)]
}

// mimeTopLevel is the IANA top-level media-type registry subset used for
// MIME verification.
var mimeTopLevel = map[string]bool{
	"application": true, "audio": true, "font": true, "image": true,
	"message": true, "model": true, "multipart": true, "text": true,
	"video": true,
}

// charsets is the IANA character-set subset used for Charset verification.
var charsets = map[string]bool{
	"utf-8": true, "utf8": true, "utf-16": true, "iso-8859-1": true,
	"iso-8859-15": true, "latin1": true, "latin2": true, "ascii": true,
	"us-ascii": true, "windows-1252": true, "koi8-r": true, "big5": true,
	"gbk": true, "gb2312": true, "euc-jp": true, "shift_jis": true,
}

// languages is the ISO 639-1 subset used for Language verification.
var languages = map[string]bool{
	"aa": true, "de": true, "en": true, "es": true, "fr": true, "it": true,
	"ja": true, "ko": true, "nl": true, "pl": true, "pt": true, "ru": true,
	"sv": true, "zh": true, "cs": true, "da": true, "el": true, "fi": true,
	"he": true, "hi": true, "tr": true,
}

// Predefined returns the predefined type definitions in inference priority
// order. Order matters: earlier definitions win when several patterns
// match, mirroring the crude-guess step of the paper.
func Predefined() []*Def {
	return []*Def{
		{
			Name:  TypeSize,
			Match: func(v string) bool { return reSize.MatchString(v) },
		},
		{
			Name:  TypeURL,
			Match: func(v string) bool { return reURL.MatchString(v) },
		},
		{
			Name: TypeIPAddress,
			Match: func(v string) bool {
				if reIPv4.MatchString(v) {
					for _, part := range strings.Split(v, ".") {
						if n, _ := strconv.Atoi(part); n > 255 {
							return false
						}
					}
					return true
				}
				return strings.Count(v, ":") >= 2 && reIPv6.MatchString(v)
			},
		},
		{
			Name:  TypeMIMEType,
			Match: func(v string) bool { return reMIME.MatchString(v) && !strings.HasPrefix(v, "/") },
			Verify: func(v string, _ *sysimage.Image) bool {
				top, _, _ := strings.Cut(v, "/")
				return mimeTopLevel[strings.ToLower(top)]
			},
		},
		{
			Name:  TypeFilePath,
			Match: func(v string) bool { return reFilePath.MatchString(v) },
			Verify: func(v string, img *sysimage.Image) bool {
				return img != nil && img.Exists(v)
			},
		},
		{
			Name:  TypePartialFilePath,
			Match: func(v string) bool { return rePartialFP.MatchString(v) },
			Verify: func(v string, img *sysimage.Image) bool {
				if img == nil {
					return false
				}
				suffix := "/" + v
				for _, p := range img.FileList() {
					if strings.HasSuffix(p, suffix) {
						return true
					}
				}
				return false
			},
		},
		{
			Name:  TypePermission,
			Match: func(v string) bool { return rePermission.MatchString(v) },
		},
		{
			Name: TypePortNumber,
			Match: func(v string) bool {
				n, err := strconv.Atoi(v)
				return err == nil && n > 0 && n <= 65535
			},
			Verify: func(v string, img *sysimage.Image) bool {
				if img == nil {
					return false
				}
				n, _ := strconv.Atoi(v)
				return img.PortRegistered(n)
			},
		},
		{
			Name:  TypeNumber,
			Match: func(v string) bool { return reNumber.MatchString(v) },
		},
		{
			Name:  TypeFileName,
			Match: func(v string) bool { return reFileName.MatchString(v) && !strings.Contains(v, "/") },
			Verify: func(v string, img *sysimage.Image) bool {
				if img == nil {
					return false
				}
				suffix := "/" + v
				for _, p := range img.FileList() {
					if strings.HasSuffix(p, suffix) {
						return true
					}
				}
				return false
			},
		},
		{
			Name:  TypeCharset,
			Match: func(v string) bool { return reIdent.MatchString(strings.ReplaceAll(v, ".", "")) },
			Verify: func(v string, _ *sysimage.Image) bool {
				return charsets[strings.ToLower(v)]
			},
		},
		{
			Name:  TypeLanguage,
			Match: func(v string) bool { return len(v) == 2 && reIdent.MatchString(v) },
			Verify: func(v string, _ *sysimage.Image) bool {
				return languages[strings.ToLower(v)]
			},
		},
		{
			Name:  TypeUserName,
			Match: func(v string) bool { return reIdent.MatchString(v) },
			Verify: func(v string, img *sysimage.Image) bool {
				return img != nil && img.UserExists(v)
			},
		},
		{
			Name:  TypeGroupName,
			Match: func(v string) bool { return reIdent.MatchString(v) },
			Verify: func(v string, img *sysimage.Image) bool {
				return img != nil && img.GroupExists(v)
			},
		},
	}
}
