// Package telemetry is the observability layer threaded through the
// assembly, rule-inference, scan, and evaluation pipelines. It records
// four kinds of signal:
//
//   - named counters (images parsed, attributes declared, rules
//     validated, findings emitted),
//   - accumulated per-stage wall-clock timers (the coarse unit kept for
//     compatibility with the original -stats output),
//   - log-bucketed latency histograms with quantile estimation — the
//     unit of timing truth for per-image parse, per-image scan, and
//     per-candidate validation latencies (see histogram.go),
//   - hierarchical spans with attributes (image name, worker id, app),
//     exportable as a Chrome trace_event timeline (see span.go,
//     trace.go).
//
// A Recorder is safe for concurrent use — pipeline workers update it while
// running — and every method is nil-receiver safe, so instrumented code
// can call it unconditionally and pay nothing when telemetry is off.
// Snapshots export as deterministic text (Render), a versioned JSON
// document (JSON/WriteJSON), or a Chrome trace (ChromeTrace).
package telemetry

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter names used by the instrumented pipeline stages. Stages add their
// own names freely; these constants exist so the assembler, rule engine,
// and scan engine agree with the CLI's -stats rendering.
const (
	CounterImagesParsed   = "assemble.images.parsed"
	CounterFilesParsed    = "assemble.files.parsed"
	CounterAttrsDeclared  = "assemble.attributes.declared"
	CounterRulesValidated = "rules.candidates.validated"
	CounterRulesKept      = "rules.kept"
	// CounterRulesPrunedSupport counts candidates the columnar index killed
	// on the support bitset before any per-system validation; the entropy
	// variant counts candidates the memoized entropy filter rejected.
	CounterRulesPrunedSupport = "rules.pruned.support"
	CounterRulesPrunedEntropy = "rules.pruned.entropy"
	// Incremental-inference counters: candidates whose cached tally was
	// adjusted in O(Δrows) versus candidates that paid a full validation
	// sweep (new, type-shifted, stale state, or newly support-eligible).
	CounterRulesDeltaReused      = "rules.delta.reused"
	CounterRulesDeltaRevalidated = "rules.delta.revalidated"
	// Compiled-plan serialization counters: plans encoded to / loaded from
	// the binary format, with byte-volume twins for sizing dashboards.
	CounterPlanEncoded      = "plan.encoded"
	CounterPlanEncodedBytes = "plan.encoded.bytes"
	CounterPlanLoaded       = "plan.loaded"
	CounterPlanLoadedBytes  = "plan.loaded.bytes"
	CounterImagesScanned    = "scan.images.scanned"
	CounterFindingsEmitted  = "scan.findings.emitted"
	CounterScanErrors       = "scan.errors"
	// Evaluation-matrix counters: grid cells scored, ground-truth errors
	// injected into victim images (counted once per (population, kind)
	// victim set, which every configuration shares), and findings emitted
	// across all cells.
	CounterMatrixCells      = "evalmatrix.cells.scored"
	CounterMatrixInjections = "evalmatrix.injections.applied"
	CounterMatrixFindings   = "evalmatrix.findings.emitted"
)

// Stage names used by the instrumented pipeline stages.
const (
	StageAssembleParse = "assemble.parse"
	StageAssembleInfer = "assemble.infer"
	StageAssembleRows  = "assemble.rows"
	StageRulesInfer    = "rules.infer"
	StageScanBatch     = "scan.batch"
)

// Histogram names used by the instrumented pipeline stages: per-unit
// latency distributions where the stage timers above only keep totals.
const (
	HistImageParse   = "assemble.image.parse"
	HistImageScan    = "scan.image.scan"
	HistRuleValidate = "rules.candidate.validate"
	HistTargetCheck  = "detect.target.check"
)

// minRenderPad is the floor for the rendered name column, chosen so the
// original counter/stage names keep their historical alignment.
const minRenderPad = 36

// Recorder accumulates counters, stage timings, latency histograms, and
// completed spans.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	phase    string
	counters map[string]int64
	stages   map[string]stage
	hists    map[string]*Histogram
	labels   *labeled
	spans    []SpanData
	// spanCap bounds the retained completed spans (0 = unbounded, the
	// batch-pipeline default). Resident daemons set a cap so span storage
	// stays constant over hours of traffic; see SetSpanCap.
	spanCap      int
	buildVersion string
	goVersion    string
	sampler      *Sampler
	spanID       atomic.Int64
}

type stage struct {
	total time.Duration
	runs  int64
}

// New returns an empty recorder. Span and trace timestamps are offsets
// from this moment.
func New() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: make(map[string]int64),
		stages:   make(map[string]stage),
		hists:    make(map[string]*Histogram),
	}
}

// SetPhase records the pipeline phase the process is currently in; the
// live /healthz endpoint and the exported snapshot surface it. StartStage
// updates it automatically, so explicit calls are only needed for
// phases that are not stages ("learn", "done"). Safe on a nil recorder.
func (r *Recorder) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phase = phase
	r.mu.Unlock()
}

// Phase returns the current pipeline phase ("" on a nil recorder).
func (r *Recorder) Phase() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// SetBuildInfo records the process build version; snapshots carry it and
// PromText exposes it as the classic info-style gauge
// encore_build_info{version,go_version} 1. The Go toolchain version is
// captured from the running binary. Safe on a nil recorder.
func (r *Recorder) SetBuildInfo(version string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buildVersion = version
	r.goVersion = runtime.Version()
	r.mu.Unlock()
}

// SetSpanCap bounds the number of completed spans the recorder retains:
// once the store exceeds cap, the oldest half is dropped in one bulk move
// (amortized O(1) per span). Batch pipelines keep the unbounded default
// so exported traces are complete; a resident daemon sets a cap so hours
// of request spans cannot grow memory without bound. Safe on a nil
// recorder.
func (r *Recorder) SetSpanCap(cap int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanCap = cap
	r.mu.Unlock()
}

// AttachSampler folds a runtime sampler into the recorder: snapshots gain
// its ring-buffer timeseries, and the sampler's clock is aligned with the
// recorder epoch so spans and samples share a timeline. Attach before
// Sampler.Start. Safe on a nil recorder (the sampler is left detached).
func (r *Recorder) AttachSampler(s *Sampler) {
	if r == nil {
		return
	}
	s.SetEpoch(r.epoch)
	r.mu.Lock()
	r.sampler = s
	r.mu.Unlock()
}

// Add increments a named counter. Safe on a nil recorder.
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Observe accumulates one timed run of a stage. Safe on a nil recorder.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.stages[name]
	s.total += d
	s.runs++
	r.stages[name] = s
	r.mu.Unlock()
}

// ObserveDur records one latency sample into the named histogram. Safe on
// a nil recorder.
func (r *Recorder) ObserveDur(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(d)
	r.mu.Unlock()
}

// MergeHistogram folds a locally accumulated histogram into the named
// recorder histogram. Pipeline workers keep a private Histogram in their
// hot loop (no lock per sample) and merge once when the pool drains.
// Safe on a nil recorder and with a nil or empty histogram.
func (r *Recorder) MergeHistogram(name string, h *Histogram) {
	if r == nil || h == nil || h.count == 0 {
		return
	}
	r.mu.Lock()
	dst := r.hists[name]
	if dst == nil {
		dst = &Histogram{}
		r.hists[name] = dst
	}
	dst.Merge(h)
	r.mu.Unlock()
}

// StartStage starts timing a stage and returns the function that stops the
// timer and records the elapsed time. Safe on a nil recorder.
//
//	defer rec.StartStage(telemetry.StageAssembleParse)()
func (r *Recorder) StartStage(name string) func() {
	if r == nil {
		return func() {}
	}
	r.SetPhase(name)
	start := time.Now()
	return func() { r.Observe(name, time.Since(start)) }
}

// Counter returns the current value of a counter (0 if never added, or on
// a nil recorder).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterValue is one named counter in a snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// StageTiming is one stage's accumulated wall-clock time in a snapshot.
type StageTiming struct {
	Name  string
	Total time.Duration
	Runs  int64
}

// Snapshot is a point-in-time copy of a recorder, ordered deterministically
// (counters, stages, and histograms by name; spans by start offset then id;
// runtime samples oldest-first) so that rendering and export are stable.
type Snapshot struct {
	Phase      string
	Counters   []CounterValue
	Stages     []StageTiming
	Histograms []HistogramData
	Spans      []SpanData
	// SampleEvery and Runtime carry the attached Sampler's cadence and
	// ring-buffer timeseries (zero/nil when no sampler is attached).
	SampleEvery time.Duration
	Runtime     []RuntimeSample
	// Labeled families (see labeled.go), sorted by (family, labels); all
	// empty for pipelines that never record labeled metrics.
	LabeledCounters   []LabeledValue
	Gauges            []GaugeValue
	LabeledHistograms []LabeledHistogramData
	// BuildVersion/GoVersion carry SetBuildInfo ("" when never set).
	BuildVersion string
	GoVersion    string
}

// Snapshot copies the recorder's current state. Safe on a nil recorder
// (returns an empty snapshot).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	// Read the sampler outside r.mu: Sampler.Samples takes the sampler's
	// own lock and never calls back into the recorder.
	r.mu.Lock()
	sampler := r.sampler
	r.mu.Unlock()
	if sampler != nil {
		s.SampleEvery = sampler.Interval()
		s.Runtime = sampler.Samples()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Phase = r.phase
	s.BuildVersion = r.buildVersion
	s.GoVersion = r.goVersion
	r.snapshotLabeled(&s)
	for name, v := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: v})
	}
	for name, st := range r.stages {
		s.Stages = append(s.Stages, StageTiming{Name: name, Total: st.total, Runs: st.runs})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.data(name))
	}
	s.Spans = append(s.Spans, r.spans...)
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].Start != s.Spans[j].Start {
			return s.Spans[i].Start < s.Spans[j].Start
		}
		return s.Spans[i].ID < s.Spans[j].ID
	})
	return s
}

// renderPad returns the width of the name column: wide enough for the
// longest name in the snapshot, never narrower than the historical fixed
// width (which keeps the original goldens byte-stable).
func (s Snapshot) renderPad() int {
	pad := minRenderPad
	grow := func(name string) {
		if len(name) > pad {
			pad = len(name)
		}
	}
	for _, c := range s.Counters {
		grow(c.Name)
	}
	for _, st := range s.Stages {
		grow(st.Name)
	}
	for _, h := range s.Histograms {
		grow(h.Name)
	}
	return pad
}

// Render formats the snapshot as the CLI's -stats block: counters first,
// then stage timings, then latency histograms, all sorted by name. Spans
// are export-only (JSON/trace); they would swamp the text block.
func (s Snapshot) Render() string {
	var b strings.Builder
	pad := s.renderPad()
	b.WriteString("stats:\n")
	if len(s.Counters) > 0 {
		b.WriteString("  counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "    %-*s %d\n", pad, c.Name, c.Value)
		}
	}
	if len(s.Stages) > 0 {
		b.WriteString("  stages:\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "    %-*s %s (%d runs)\n", pad, st.Name, st.Total.Round(time.Microsecond), st.Runs)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("  latency:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "    %-*s n=%d p50=%s p90=%s p99=%s max=%s\n",
				pad, h.Name, h.Count,
				h.P50.Round(time.Microsecond), h.P90.Round(time.Microsecond),
				h.P99.Round(time.Microsecond), h.Max.Round(time.Microsecond))
		}
	}
	if len(s.LabeledCounters) > 0 || len(s.Gauges) > 0 {
		b.WriteString("  labeled:\n")
		for _, c := range s.LabeledCounters {
			fmt.Fprintf(&b, "    %s{%s} %d\n", c.Family, c.Labels, c.Value)
		}
		for _, g := range s.Gauges {
			if g.Labels == "" {
				fmt.Fprintf(&b, "    %s %g\n", g.Family, g.Value)
				continue
			}
			fmt.Fprintf(&b, "    %s{%s} %g\n", g.Family, g.Labels, g.Value)
		}
	}
	if len(s.LabeledHistograms) > 0 {
		b.WriteString("  labeled latency:\n")
		for _, h := range s.LabeledHistograms {
			fmt.Fprintf(&b, "    %s{%s} n=%d p50=%s p90=%s p99=%s max=%s\n",
				h.Family, h.Labels, h.Data.Count,
				h.Data.P50.Round(time.Microsecond), h.Data.P90.Round(time.Microsecond),
				h.Data.P99.Round(time.Microsecond), h.Data.Max.Round(time.Microsecond))
		}
	}
	if len(s.Counters) == 0 && len(s.Stages) == 0 && len(s.Histograms) == 0 &&
		len(s.LabeledCounters) == 0 && len(s.Gauges) == 0 && len(s.LabeledHistograms) == 0 {
		b.WriteString("  (empty)\n")
	}
	return b.String()
}

// Render formats the recorder's current state; see Snapshot.Render.
func (r *Recorder) Render() string { return r.Snapshot().Render() }
