// Package fleet is the sharded scan coordinator: it pushes the batch
// scan engine from corpus-sized directories to 100k+-image fleets at
// constant memory.
//
// The unsharded engine (internal/scan) pre-fills one buffered channel
// with every task index — fine at 32 images, unbounded at fleet scale.
// The coordinator instead splits the fleet's canonical input order into S
// contiguous shards. Each shard owns a bounded deque fed by its own
// discovery goroutine (backpressure: discovery blocks when its workers
// lag) and a group of workers popping the deque front. A worker whose
// shard is exhausted turns thief: it steals single tasks from its
// neighbors' deque tails, so a skewed fleet (one shard holding nearly
// everything) still finishes at full parallelism instead of idling S-1
// worker groups.
//
// Memory is governed twice over. Structurally, only the name list and the
// bounded deques are resident — images stream through the pooled decode
// buffers and die young. Explicitly, a global budget meters the estimated
// bytes of every in-flight image payload: workers reserve before loading
// and release after checking, and the reservation high-water mark is
// exported as a gauge so the runtime sampler's heap trace can be read
// against it. Peak RSS stays flat as the fleet grows 10×.
//
// Determinism: every task index is processed exactly once and delivered
// to the sink with its index; aggregating by index reproduces the
// unsharded engine's output byte for byte, regardless of shard count,
// worker count, or steal schedule. The per-image work itself (load +
// Plan.Check) is deterministic, so only ordering needs recovering.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// Defaults for the coordinator's tuning knobs.
const (
	// DefaultQueueDepth bounds each shard's deque. Deep enough that
	// discovery (a name-list walk) never starves workers, shallow enough
	// that queued indices stay a rounding error at any fleet size.
	DefaultQueueDepth = 64
	// DefaultMemoryBudget caps estimated in-flight image payload bytes.
	DefaultMemoryBudget = 256 << 20
)

// Exported fleet metric families (labeled-family names render verbatim
// on /metrics and in telemetry snapshots).
const (
	MetricImages         = "encore_fleet_images_total"
	MetricErrors         = "encore_fleet_errors_total"
	MetricSteals         = "encore_fleet_steals_total"
	MetricBatches        = "encore_fleet_batches_total"
	MetricShards         = "encore_fleet_shards"
	MetricInflightBytes  = "encore_fleet_inflight_bytes"
	MetricHighWaterBytes = "encore_fleet_inflight_highwater_bytes"
)

// Options configures a Coordinator.
type Options struct {
	// Check produces the report for one image. Required.
	Check scan.CheckFunc
	// Shards is the number of discovery/worker groups; 0 picks
	// min(NumCPU, 4) and is always clamped to the fleet size.
	Shards int
	// Workers is the total worker count across all shards; 0 means
	// NumCPU, and the count is raised to at least one per shard.
	Workers int
	// QueueDepth bounds each shard's deque (0 = DefaultQueueDepth).
	QueueDepth int
	// MemoryBudget caps the estimated bytes of in-flight image payloads
	// (0 = DefaultMemoryBudget). A single oversized image is admitted
	// alone rather than deadlocking.
	MemoryBudget int64
	// Telemetry receives counters, the per-image scan histogram, worker
	// spans, and the encore_fleet_* families. Nil disables all of it.
	// The coordinator deliberately records no per-image spans: a span
	// per image would grow the recorder linearly with fleet size.
	Telemetry *telemetry.Recorder
	// Log receives per-image failure records at warn level. Nil silences.
	Log *slog.Logger
	// Progress, when set, is stepped once per finished image.
	Progress *telemetry.Progress
	// Alerts, when set, receives every warning, severity-classified, with
	// per-image provenance. Publishing never blocks the scan path.
	Alerts *alert.Pipeline
	// RequestID correlates the batch's alerts ("scan-..." generated when
	// empty and Alerts is set).
	RequestID string
	// App, when set, is the application label stamped on alerts (the serve
	// daemon's registry app); empty derives it per warning attribute via
	// scan.AlertApp, the CLI convention.
	App string
	// PlanVersion is the knowledge provenance stamped on alerts.
	PlanVersion string
}

// Stats summarizes one coordinator run.
type Stats struct {
	// Images counts every task processed (healthy or failed).
	Images int64
	// Errors counts tasks that produced a ScanError.
	Errors int64
	// Findings counts warnings across healthy images.
	Findings int64
	// Steals counts tasks taken from a foreign shard's deque.
	Steals int64
	// HighWaterBytes is the peak of the memory budget's in-flight
	// reservation over the run.
	HighWaterBytes int64
	// Shards and Workers are the resolved topology.
	Shards, Workers int
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// Sink receives every completed task. Workers call it concurrently; idx
// is the task's global input index, delivered exactly once per index.
// The sink must not retain it.Report's image (there is none to retain —
// items carry reports, not images).
type Sink func(idx int, it scan.Item)

// Coordinator runs sharded fleet scans. The zero value is unusable; fill
// Options and call Run. A Coordinator is stateless across runs and safe
// to reuse serially; concurrent Runs on one Coordinator are safe too
// (each run carries its own state).
type Coordinator struct {
	Opts Options
}

// deque is one shard's bounded work queue. The discovery goroutine
// pushes at the back (blocking when full — that bound is the constant-
// memory contract for queued work); shard-local workers pop at the
// front (FIFO preserves input locality); thieves steal from the back.
type deque struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []int
	head     int
	count    int
	done     bool // discovery finished
}

func newDeque(capacity int) *deque {
	d := &deque{buf: make([]int, capacity)}
	d.notEmpty.L = &d.mu
	d.notFull.L = &d.mu
	return d
}

// run is the per-Run state shared by discovery, workers, and thieves.
type run struct {
	opts   Options
	src    Source
	sink   Sink
	shards []*deque

	remaining atomic.Int64 // tasks not yet taken by any worker
	canceled  atomic.Bool

	// stealMu/stealCond/stealGen implement missed-wakeup-free waiting
	// for thieves: every push, discovery completion, cancellation, and
	// final take bumps the generation and broadcasts.
	stealMu   sync.Mutex
	stealCond *sync.Cond
	stealGen  uint64

	// budget meters estimated in-flight image payload bytes.
	budgetMu   sync.Mutex
	budgetCond *sync.Cond
	budgetCap  int64
	inflight   int64
	highWater  int64

	steals   atomic.Int64
	errors   atomic.Int64
	findings atomic.Int64
	reqID    string
}

// Run scans every task of src across the configured shards and delivers
// each outcome to sink. It blocks until the fleet is drained (or ctx is
// canceled, in which case it stops promptly, joins every goroutine, and
// returns ctx's error). Misuse (nil Check/src/sink) errors immediately.
func (c *Coordinator) Run(ctx context.Context, src Source, sink Sink) (Stats, error) {
	if c.Opts.Check == nil {
		return Stats{}, fmt.Errorf("fleet: coordinator has no Check function")
	}
	if src == nil || sink == nil {
		return Stats{}, fmt.Errorf("fleet: Run needs a source and a sink")
	}
	n := src.Len()
	shards, workers := c.topology(n)
	depth := c.Opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	budget := c.Opts.MemoryBudget
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}

	r := &run{opts: c.Opts, src: src, sink: sink, budgetCap: budget}
	r.stealCond = sync.NewCond(&r.stealMu)
	r.budgetCond = sync.NewCond(&r.budgetMu)
	r.remaining.Store(int64(n))
	r.reqID = c.Opts.RequestID
	if r.reqID == "" && c.Opts.Alerts != nil {
		r.reqID = "scan-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}

	rec := c.Opts.Telemetry
	defer rec.StartStage(telemetry.StageScanBatch)()
	root := rec.StartSpan("fleet.batch",
		telemetry.A("images", strconv.Itoa(n)),
		telemetry.A("shards", strconv.Itoa(shards)),
		telemetry.A("workers", strconv.Itoa(workers)))
	defer root.End()
	rec.SetGauge(MetricShards, "", float64(shards))
	rec.AddLabeled(MetricBatches, "", 1)

	start := time.Now()
	r.shards = make([]*deque, shards)
	for i := range r.shards {
		r.shards[i] = newDeque(depth)
	}

	// Cancellation watcher: flips the canceled flag and wakes every
	// blocked discovery, worker, thief, and budget waiter. watchDone
	// stops it when the run drains on its own.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			r.cancel()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	// One discovery goroutine per shard: walks the shard's contiguous
	// index range, pushing into the bounded deque.
	for s := 0; s < shards; s++ {
		lo, hi := shardRange(n, shards, s)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			d := r.shards[s]
			for i := lo; i < hi; i++ {
				if !d.push(r, i) {
					break // canceled
				}
			}
			d.markDone(r)
		}(s, lo, hi)
	}
	// Worker groups: workers are dealt round-robin so every shard gets
	// at least one and the remainder spreads evenly.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(root, w, w%shards)
		}(w)
	}
	wg.Wait()
	close(watchDone)
	watch.Wait()

	stats := Stats{
		Images:         int64(n) - r.remaining.Load(),
		Errors:         r.errors.Load(),
		Findings:       r.findings.Load(),
		Steals:         r.steals.Load(),
		HighWaterBytes: r.highWater,
		Shards:         shards,
		Workers:        workers,
		Elapsed:        time.Since(start),
	}
	rec.AddLabeled(MetricSteals, "", stats.Steals)
	rec.SetGauge(MetricHighWaterBytes, "", float64(stats.HighWaterBytes))
	rec.SetGauge(MetricInflightBytes, "", 0)
	if r.canceled.Load() {
		return stats, ctx.Err()
	}
	return stats, nil
}

// Collect runs the coordinator over src and gathers every item into a
// Result in canonical input order — the drop-in sharded equivalent of
// Engine.ScanDir, for fleets small enough to retain whole. Fleet-scale
// consumers should pass Run a streaming sink instead.
func (c *Coordinator) Collect(ctx context.Context, src Source) (*scan.Result, Stats, error) {
	items := make([]scan.Item, src.Len())
	stats, err := c.Run(ctx, src, func(idx int, it scan.Item) {
		items[idx] = it // exactly-once per index: distinct elements, no lock
	})
	if err != nil {
		return nil, stats, err
	}
	return &scan.Result{Items: items}, stats, nil
}

// topology resolves shard and worker counts for a fleet of n tasks.
func (c *Coordinator) topology(n int) (shards, workers int) {
	shards = c.Opts.Shards
	if shards <= 0 {
		shards = runtime.NumCPU()
		if shards > 4 {
			shards = 4
		}
	}
	if n > 0 && shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	workers = c.Opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < shards {
		workers = shards
	}
	if n > 0 && workers > n {
		workers = n
		if shards > workers {
			shards = workers
		}
	}
	return shards, workers
}

// shardRange is shard s's contiguous [lo, hi) slice of the fleet.
func shardRange(n, shards, s int) (lo, hi int) {
	base, rem := n/shards, n%shards
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// cancel wakes everything that could be blocked.
func (r *run) cancel() {
	r.canceled.Store(true)
	for _, d := range r.shards {
		d.mu.Lock()
		d.notEmpty.Broadcast()
		d.notFull.Broadcast()
		d.mu.Unlock()
	}
	r.budgetMu.Lock()
	r.budgetCond.Broadcast()
	r.budgetMu.Unlock()
	r.bump()
}

// bump advances the steal generation and wakes waiting thieves.
func (r *run) bump() {
	r.stealMu.Lock()
	r.stealGen++
	r.stealMu.Unlock()
	r.stealCond.Broadcast()
}

// gen reads the current steal generation.
func (r *run) gen() uint64 {
	r.stealMu.Lock()
	g := r.stealGen
	r.stealMu.Unlock()
	return g
}

// waitSteal blocks until the steal generation moves past gen, the fleet
// drains, or the run is canceled.
func (r *run) waitSteal(gen uint64) {
	r.stealMu.Lock()
	for gen == r.stealGen && r.remaining.Load() > 0 && !r.canceled.Load() {
		r.stealCond.Wait()
	}
	r.stealMu.Unlock()
}

// push appends a task at the deque's back, blocking while full. Returns
// false when the run was canceled instead.
func (d *deque) push(r *run, idx int) bool {
	d.mu.Lock()
	for d.count == len(d.buf) && !r.canceled.Load() {
		d.notFull.Wait()
	}
	if r.canceled.Load() {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.count)%len(d.buf)] = idx
	d.count++
	d.notEmpty.Signal()
	d.mu.Unlock()
	r.bump() // new stealable work
	return true
}

// markDone records discovery completion and wakes shard workers that were
// waiting for more local work.
func (d *deque) markDone(r *run) {
	d.mu.Lock()
	d.done = true
	d.notEmpty.Broadcast()
	d.mu.Unlock()
	r.bump()
}

// popFront takes the oldest local task. ok=false with open=true means
// "retry" (spurious wake), ok=false with open=false means the shard is
// exhausted: discovery is done and the deque is empty.
func (d *deque) popFront(r *run) (idx int, ok, open bool) {
	d.mu.Lock()
	for d.count == 0 && !d.done && !r.canceled.Load() {
		d.notEmpty.Wait()
	}
	if r.canceled.Load() || d.count == 0 {
		open := !d.done && !r.canceled.Load()
		d.mu.Unlock()
		return 0, false, open
	}
	idx = d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	d.notFull.Signal()
	d.mu.Unlock()
	return idx, true, true
}

// stealBack takes the newest task from a foreign deque without blocking.
func (d *deque) stealBack() (idx int, ok bool) {
	d.mu.Lock()
	if d.count == 0 {
		d.mu.Unlock()
		return 0, false
	}
	d.count--
	idx = d.buf[(d.head+d.count)%len(d.buf)]
	d.notFull.Signal()
	d.mu.Unlock()
	return idx, true
}

// take accounts one task acquisition; the final take wakes waiting
// thieves so they can exit.
func (r *run) take() {
	if r.remaining.Add(-1) == 0 {
		r.bump()
	}
}

// acquire reserves size budget bytes, blocking while the fleet is over
// budget. Oversized single images are admitted alone (the reservation
// clamps to the budget) rather than deadlocking. Returns false on cancel.
func (r *run) acquire(size int64) bool {
	if size <= 0 {
		return !r.canceled.Load()
	}
	if size > r.budgetCap {
		size = r.budgetCap
	}
	r.budgetMu.Lock()
	for r.inflight+size > r.budgetCap && !r.canceled.Load() {
		r.budgetCond.Wait()
	}
	if r.canceled.Load() {
		r.budgetMu.Unlock()
		return false
	}
	r.inflight += size
	if r.inflight > r.highWater {
		r.highWater = r.inflight
	}
	cur := r.inflight
	r.budgetMu.Unlock()
	r.opts.Telemetry.SetGauge(MetricInflightBytes, "", float64(cur))
	return true
}

// release returns a reservation.
func (r *run) release(size int64) {
	if size <= 0 {
		return
	}
	if size > r.budgetCap {
		size = r.budgetCap
	}
	r.budgetMu.Lock()
	r.inflight -= size
	r.budgetMu.Unlock()
	r.budgetCond.Signal()
}

// worker drains its home shard front-to-back, then turns thief: it
// sweeps the other shards' deque tails until the whole fleet is taken.
func (r *run) worker(root *telemetry.Span, id, home int) {
	ws := root.StartChild("fleet.worker",
		telemetry.A("worker", strconv.Itoa(id)),
		telemetry.A("shard", strconv.Itoa(home)))
	defer ws.End()
	var hist telemetry.Histogram
	defer r.opts.Telemetry.MergeHistogram(telemetry.HistImageScan, &hist)

	for {
		idx, ok, open := r.shards[home].popFront(r)
		if !ok {
			if !open {
				break // shard exhausted (or canceled) → steal phase
			}
			continue
		}
		r.take()
		r.process(idx, &hist)
	}

	for !r.canceled.Load() && r.remaining.Load() > 0 {
		gen := r.gen()
		idx, ok := r.steal(home)
		if !ok {
			r.waitSteal(gen)
			continue
		}
		r.take()
		r.steals.Add(1)
		r.process(idx, &hist)
	}
}

// steal sweeps the other shards round-robin from the thief's home.
func (r *run) steal(home int) (idx int, ok bool) {
	n := len(r.shards)
	for off := 1; off < n; off++ {
		if idx, ok := r.shards[(home+off)%n].stealBack(); ok {
			return idx, true
		}
	}
	return 0, false
}

// process loads, checks, and delivers one task — the same per-image
// semantics as the unsharded engine's runOne plus its telemetry, alert,
// and progress side effects.
func (r *run) process(idx int, hist *telemetry.Histogram) {
	size := r.src.Size(idx)
	if !r.acquire(size) {
		// Canceled while waiting for budget: the task was already taken,
		// so it is dropped, exactly like tasks never discovered. Run
		// reports the cancellation.
		return
	}
	defer r.release(size)

	start := time.Now()
	var it scan.Item
	img, err := r.src.Load(idx)
	if err != nil {
		it = scan.Item{Err: &scan.ScanError{Path: r.src.Name(idx), Err: err}}
	} else {
		report, err := r.opts.Check(img)
		if err != nil {
			it = scan.Item{ImageID: img.ID, Err: &scan.ScanError{ImageID: img.ID, Path: r.src.Name(idx), Err: err}}
		} else {
			it = scan.Item{ImageID: img.ID, Report: report}
		}
	}
	hist.Observe(time.Since(start))

	rec := r.opts.Telemetry
	rec.Add(telemetry.CounterImagesScanned, 1)
	rec.AddLabeled(MetricImages, "", 1)
	if it.Err == nil {
		warnings := len(it.Report.Warnings)
		r.findings.Add(int64(warnings))
		if r.opts.Alerts != nil {
			for _, w := range it.Report.Warnings {
				app := r.opts.App
				if app == "" {
					app = scan.AlertApp(w.Attr)
				}
				r.opts.Alerts.Publish(alert.FromWarning(w,
					app, it.ImageID, r.reqID, r.opts.PlanVersion))
			}
		}
		rec.Add(telemetry.CounterFindingsEmitted, int64(warnings))
		r.opts.Progress.Step(warnings)
	} else {
		r.errors.Add(1)
		rec.Add(telemetry.CounterScanErrors, 1)
		rec.AddLabeled(MetricErrors, "", 1)
		r.opts.Progress.Step(0)
		if r.opts.Log != nil {
			r.opts.Log.Warn("image scan failed",
				"image", it.Err.ImageID, "path", it.Err.Path, "err", it.Err.Err)
		}
	}
	r.sink(idx, it)
}
