package telemetry

import (
	"strconv"
	"sync"
	"testing"
)

// TestNilSpanSafety pins the contract that instrumented code can start and
// annotate spans unconditionally: a nil recorder yields a nil span, and
// every span method no-ops on nil.
func TestNilSpanSafety(t *testing.T) {
	var r *Recorder
	root := r.StartSpan("root", A("k", "v"))
	if root != nil {
		t.Fatal("nil recorder should return a nil span")
	}
	root.SetAttr("late", "x")
	child := root.StartChild("child")
	child.SetAttr("k", "v")
	child.End()
	root.End()
	if s := r.Snapshot(); len(s.Spans) != 0 {
		t.Fatal("nil recorder recorded spans")
	}
}

// TestSpanTree checks ids, parent links, attribute capture (including
// late SetAttr), and snapshot ordering for a small span tree.
func TestSpanTree(t *testing.T) {
	r := New()
	root := r.StartSpan("scan.batch", A("images", "2"))
	child := root.StartChild("scan.worker", A("worker", "0"))
	grand := child.StartChild("scan.image", A("task", "img-0"))
	grand.SetAttr("image", "img-0")
	grand.End()
	child.End()
	root.SetAttr("errors", "0")
	root.End()

	s := r.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(s.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range s.Spans {
		byName[sp.Name] = sp
	}
	rt, ch, gr := byName["scan.batch"], byName["scan.worker"], byName["scan.image"]
	if rt.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rt.Parent)
	}
	if ch.Parent != rt.ID || gr.Parent != ch.ID {
		t.Fatalf("parent links broken: root=%d child=%d/%d grand=%d/%d",
			rt.ID, ch.ID, ch.Parent, gr.ID, gr.Parent)
	}
	if rt.ID == ch.ID || ch.ID == gr.ID || rt.ID == gr.ID {
		t.Fatal("span ids must be unique")
	}
	if len(gr.Attrs) != 2 || gr.Attrs[0] != A("task", "img-0") || gr.Attrs[1] != A("image", "img-0") {
		t.Fatalf("grandchild attrs = %v", gr.Attrs)
	}
	if len(rt.Attrs) != 2 || rt.Attrs[1] != A("errors", "0") {
		t.Fatalf("SetAttr after StartSpan lost: %v", rt.Attrs)
	}
	// Children start at or after their parent and end within the
	// snapshot's recorded window.
	if ch.Start < rt.Start || gr.Start < ch.Start {
		t.Fatalf("child started before parent: root=%v child=%v grand=%v", rt.Start, ch.Start, gr.Start)
	}
	for _, sp := range s.Spans {
		if sp.Dur < 0 {
			t.Fatalf("span %q has negative duration %v", sp.Name, sp.Dur)
		}
	}
	// Snapshot orders spans by start offset, then id.
	for i := 1; i < len(s.Spans); i++ {
		a, b := s.Spans[i-1], s.Spans[i]
		if a.Start > b.Start || (a.Start == b.Start && a.ID > b.ID) {
			t.Fatalf("spans out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestSpanConcurrentChildren exercises the pool idiom — many goroutines
// opening children under one coordinator-owned parent — under the race
// detector.
func TestSpanConcurrentChildren(t *testing.T) {
	const workers, perWorker = 8, 50
	r := New()
	root := r.StartSpan("pool")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := root.StartChild("worker", A("worker", strconv.Itoa(w)))
			for i := 0; i < perWorker; i++ {
				item := ws.StartChild("item")
				item.End()
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	root.End()

	s := r.Snapshot()
	want := 1 + workers + workers*perWorker
	if len(s.Spans) != want {
		t.Fatalf("spans = %d, want %d", len(s.Spans), want)
	}
	ids := map[int64]string{}
	workerIDs := map[int64]bool{}
	var rootID int64
	for _, sp := range s.Spans {
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = sp.Name
		switch sp.Name {
		case "pool":
			rootID = sp.ID
		case "worker":
			workerIDs[sp.ID] = true
		}
	}
	for _, sp := range s.Spans {
		switch sp.Name {
		case "worker":
			if sp.Parent != rootID {
				t.Fatalf("worker span parent = %d, want root %d", sp.Parent, rootID)
			}
		case "item":
			if !workerIDs[sp.Parent] {
				t.Fatalf("item span parent = %d is not a worker span", sp.Parent)
			}
		}
	}
}
