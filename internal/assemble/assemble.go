// Package assemble implements EnCore's data assembler (Figure 3): it parses
// the configuration files captured in a system image, infers semantic types
// for every entry, augments eligible entries with environment-derived
// attributes (Table 5a), attaches the configuration-independent environment
// attributes (Table 5b), and emits the result as a dataset table.
//
// After assembly, original configuration entries and environment-derived
// data are integrated and treated uniformly as "attributes" by the rule
// inference and anomaly detection stages.
package assemble

import (
	"fmt"
	"log/slog"
	"strconv"
	"strings"

	"repro/internal/conftypes"
	"repro/internal/sysimage"
	"repro/internal/telemetry"
)

// Augmenter derives one environment attribute from a configuration value of
// a specific semantic type (one row of Table 5a).
type Augmenter struct {
	// Suffix is appended to the entry's attribute name with a dot
	// separator ("owner" gives "datadir.owner").
	Suffix string
	// Type of the augmented attribute.
	Type conftypes.Type
	// Compute returns the augmented value for the entry value in the
	// context of the image; ok=false emits nothing (e.g. path missing).
	Compute func(value string, img *sysimage.Image) (string, bool)
}

// EnvAttr is a configuration-independent environment attribute
// (one row of Table 5b).
type EnvAttr struct {
	Name    string
	Type    conftypes.Type
	Compute func(img *sysimage.Image) (string, bool)
}

// Assembler converts images into dataset rows.
type Assembler struct {
	Inferencer *conftypes.Inferencer
	augmenters map[conftypes.Type][]Augmenter
	envAttrs   []EnvAttr
	// SkipPatternValues suppresses semantic augmentation for values that
	// look like globs or regular expressions (a documented inference-error
	// source in the paper).
	SkipPatternValues bool
	// Workers bounds the parallel-assembly pool; 0 means NumCPU, 1 forces
	// the sequential reference path.
	Workers int
	// Telemetry, when set, receives stage timings and counters for every
	// assembly run. Nil disables instrumentation.
	Telemetry *telemetry.Recorder
	// Log, when set, receives structured records for assembly failures
	// (parse errors at warn, correlated with their assemble.image span).
	// Nil silences assembler logging.
	Log *slog.Logger
}

// New returns an assembler with the default inferencer, the default
// Table 5a augmenters, and the default Table 5b environment attributes.
func New() *Assembler {
	a := &Assembler{
		Inferencer:        conftypes.NewInferencer(),
		augmenters:        make(map[conftypes.Type][]Augmenter),
		SkipPatternValues: true,
	}
	a.installDefaults()
	return a
}

// AddAugmenter registers an additional augmenter for a type (the
// customization hook of Section 5.3).
func (a *Assembler) AddAugmenter(t conftypes.Type, aug Augmenter) {
	a.augmenters[t] = append(a.augmenters[t], aug)
}

// AddEnvAttr registers an additional environment attribute.
func (a *Assembler) AddEnvAttr(e EnvAttr) {
	a.envAttrs = append(a.envAttrs, e)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func (a *Assembler) installDefaults() {
	// FilePath: the seven attributes of Table 5a plus existence.
	fp := []Augmenter{
		{Suffix: "exists", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			return boolStr(im.Exists(v)), true
		}},
		{Suffix: "owner", Type: conftypes.TypeUserName, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if fm := im.Resolve(v); fm != nil {
				return fm.Owner, true
			}
			return "", false
		}},
		{Suffix: "group", Type: conftypes.TypeGroupName, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if fm := im.Resolve(v); fm != nil {
				return fm.Group, true
			}
			return "", false
		}},
		{Suffix: "type", Type: conftypes.TypeEnum, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if fm := im.Resolve(v); fm != nil {
				return fm.Kind.String(), true
			}
			return "missing", true
		}},
		{Suffix: "permission", Type: conftypes.TypePermission, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if fm := im.Resolve(v); fm != nil {
				return fmt.Sprintf("0%o", fm.Mode&0o777), true
			}
			return "", false
		}},
		{Suffix: "hasDir", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if im.IsDir(v) {
				return boolStr(im.HasSubdir(v)), true
			}
			return "", false
		}},
		{Suffix: "hasSymLink", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if im.IsDir(v) {
				return boolStr(im.HasSymlink(v)), true
			}
			return "", false
		}},
		{Suffix: "worldReadable", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if fm := im.Resolve(v); fm != nil {
				return boolStr(fm.Mode&0o004 != 0), true
			}
			return "", false
		}},
	}
	a.augmenters[conftypes.TypeFilePath] = fp

	// IPAddress: Table 5a's Local / IPv6 / AnyAddr flags.
	a.augmenters[conftypes.TypeIPAddress] = []Augmenter{
		{Suffix: "Local", Type: conftypes.TypeBoolean, Compute: func(v string, _ *sysimage.Image) (string, bool) {
			return boolStr(isPrivateAddr(v)), true
		}},
		{Suffix: "IPv6", Type: conftypes.TypeBoolean, Compute: func(v string, _ *sysimage.Image) (string, bool) {
			return boolStr(strings.Contains(v, ":")), true
		}},
		{Suffix: "AnyAddr", Type: conftypes.TypeBoolean, Compute: func(v string, _ *sysimage.Image) (string, bool) {
			return boolStr(v == "0.0.0.0" || v == "::"), true
		}},
	}

	// UserName: admin/root-group flags and the primary group.
	a.augmenters[conftypes.TypeUserName] = []Augmenter{
		{Suffix: "exists", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			return boolStr(im.UserExists(v)), true
		}},
		{Suffix: "isAdmin", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if !im.UserExists(v) {
				return "", false
			}
			return boolStr(im.IsAdmin(v)), true
		}},
		{Suffix: "isRootGroup", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			if !im.UserExists(v) {
				return "", false
			}
			return boolStr(im.PrimaryGroup(v) == "root"), true
		}},
		{Suffix: "isGroup", Type: conftypes.TypeGroupName, Compute: func(v string, im *sysimage.Image) (string, bool) {
			g := im.PrimaryGroup(v)
			return g, g != ""
		}},
	}

	// PortNumber: registration and privilege level.
	a.augmenters[conftypes.TypePortNumber] = []Augmenter{
		{Suffix: "registered", Type: conftypes.TypeBoolean, Compute: func(v string, im *sysimage.Image) (string, bool) {
			n, err := strconv.Atoi(v)
			if err != nil {
				return "", false
			}
			return boolStr(im.PortRegistered(n)), true
		}},
		{Suffix: "privileged", Type: conftypes.TypeBoolean, Compute: func(v string, _ *sysimage.Image) (string, bool) {
			n, err := strconv.Atoi(v)
			if err != nil {
				return "", false
			}
			return boolStr(n < 1024), true
		}},
	}

	// Table 5b: environment attributes independent of configuration
	// entries.
	a.envAttrs = []EnvAttr{
		{Name: "Sys.HostName", Type: conftypes.TypeString, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.HostName, im.OS.HostName != ""
		}},
		{Name: "Sys.IPAddress", Type: conftypes.TypeIPAddress, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.IPAddress, im.OS.IPAddress != ""
		}},
		{Name: "Sys.FSType", Type: conftypes.TypeString, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.FSType, im.OS.FSType != ""
		}},
		{Name: "OS.DistName", Type: conftypes.TypeString, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.DistName, im.OS.DistName != ""
		}},
		{Name: "OS.Version", Type: conftypes.TypeString, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.Version, im.OS.Version != ""
		}},
		{Name: "OS.SEStatus", Type: conftypes.TypeEnum, Compute: func(im *sysimage.Image) (string, bool) {
			return im.OS.SELinux, im.OS.SELinux != ""
		}},
		{Name: "OS.AppArmor", Type: conftypes.TypeBoolean, Compute: func(im *sysimage.Image) (string, bool) {
			return boolStr(im.OS.AppArmor), true
		}},
		{Name: "CPU.Threads", Type: conftypes.TypeNumber, Compute: func(im *sysimage.Image) (string, bool) {
			if !im.HW.Present {
				return "", false
			}
			return strconv.Itoa(im.HW.CPUThreads), true
		}},
		{Name: "CPU.Freq", Type: conftypes.TypeNumber, Compute: func(im *sysimage.Image) (string, bool) {
			if !im.HW.Present {
				return "", false
			}
			return strconv.Itoa(im.HW.CPUFreqMHz), true
		}},
		{Name: "MemSize", Type: conftypes.TypeSize, Compute: func(im *sysimage.Image) (string, bool) {
			if !im.HW.Present {
				return "", false
			}
			return conftypes.FormatSize(im.HW.MemBytes), true
		}},
		{Name: "HDD.AvailSpace", Type: conftypes.TypeSize, Compute: func(im *sysimage.Image) (string, bool) {
			if !im.HW.Present {
				return "", false
			}
			return conftypes.FormatSize(im.HW.DiskBytes), true
		}},
	}
}

// isPrivateAddr reports whether the address is loopback or in the RFC 1918
// / RFC 4193 private ranges.
func isPrivateAddr(v string) bool {
	if v == "127.0.0.1" || v == "::1" || strings.HasPrefix(v, "127.") {
		return true
	}
	if strings.HasPrefix(v, "10.") || strings.HasPrefix(v, "192.168.") {
		return true
	}
	if strings.HasPrefix(v, "172.") {
		parts := strings.SplitN(v, ".", 3)
		if len(parts) >= 2 {
			if n, err := strconv.Atoi(parts[1]); err == nil && n >= 16 && n <= 31 {
				return true
			}
		}
	}
	// RFC 4193 unique-local IPv6.
	lower := strings.ToLower(v)
	return strings.HasPrefix(lower, "fc") || strings.HasPrefix(lower, "fd")
}
