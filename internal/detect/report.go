package detect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// RenderText formats the report as a human-readable ranked list. top caps
// the number of warnings shown (0 = all).
func (r *Report) RenderText(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %s: %d warnings\n", r.SystemID, len(r.Warnings))
	for _, w := range r.Warnings {
		if top > 0 && w.Rank > top {
			fmt.Fprintf(&b, "... and %d more\n", len(r.Warnings)-top)
			break
		}
		fmt.Fprintf(&b, "%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}
	return b.String()
}

// reportJSON is the serialized report shape.
type reportJSON struct {
	SystemID string        `json:"systemId"`
	Warnings []warningJSON `json:"warnings"`
}

type warningJSON struct {
	Rank    int     `json:"rank"`
	Kind    Kind    `json:"kind"`
	Attr    string  `json:"attr"`
	Value   string  `json:"value,omitempty"`
	Message string  `json:"message"`
	Score   float64 `json:"score"`
	Rule    string  `json:"rule,omitempty"`
}

// RenderJSON serializes the report for machine consumption.
func (r *Report) RenderJSON() ([]byte, error) {
	out := reportJSON{SystemID: r.SystemID}
	for _, w := range r.Warnings {
		wj := warningJSON{
			Rank: w.Rank, Kind: w.Kind, Attr: w.Attr,
			Value: w.Value, Message: w.Message, Score: w.Score,
		}
		if w.Rule != nil {
			wj.Rule = w.Rule.String()
		}
		out.Warnings = append(out.Warnings, wj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// reportScratch recycles the serialization scaffolding across AppendJSON
// calls: the warnings slice is the only per-report allocation of note,
// and reusing it makes report encoding allocation-free at steady state.
var reportScratch = sync.Pool{New: func() any { return new(reportJSON) }}

// AppendJSON writes the report's compact serialization into buf — the
// allocation-light sibling of RenderJSON for hot paths that encode into
// pooled buffers. The JSON content is identical to RenderJSON up to
// whitespace (json.Encoder re-compacts embedded RawMessages, so swapping
// one for the other never changes a response's wire bytes); a trailing
// newline terminates the document.
func (r *Report) AppendJSON(buf *bytes.Buffer) error {
	out := reportScratch.Get().(*reportJSON)
	out.SystemID = r.SystemID
	out.Warnings = out.Warnings[:0]
	for _, w := range r.Warnings {
		wj := warningJSON{
			Rank: w.Rank, Kind: w.Kind, Attr: w.Attr,
			Value: w.Value, Message: w.Message, Score: w.Score,
		}
		if w.Rule != nil {
			wj.Rule = w.Rule.String()
		}
		out.Warnings = append(out.Warnings, wj)
	}
	err := json.NewEncoder(buf).Encode(out)
	out.Warnings = out.Warnings[:0]
	reportScratch.Put(out)
	return err
}

// CountByKind tallies warnings per kind.
func (r *Report) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, w := range r.Warnings {
		out[w.Kind]++
	}
	return out
}

// Filter returns the warnings satisfying pred, preserving rank order.
func (r *Report) Filter(pred func(*Warning) bool) []*Warning {
	var out []*Warning
	for _, w := range r.Warnings {
		if pred(w) {
			out = append(out, w)
		}
	}
	return out
}
