package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNewLoggerText checks the text handler drops timestamps (stable CLI
// output) and respects the level floor.
func TestNewLoggerText(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("image scanned", "image", "web-01", "warnings", 3)
	got := b.String()
	if strings.Contains(got, "hidden") {
		t.Fatalf("debug record passed an info floor: %q", got)
	}
	want := "level=INFO msg=\"image scanned\" image=web-01 warnings=3\n"
	if got != want {
		t.Fatalf("text record = %q, want %q", got, want)
	}
}

// TestNewLoggerJSON checks the json handler emits one parseable object per
// line, timestamps included.
func TestNewLoggerJSON(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("parse failed", "image", "db-02")
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("json record not parseable: %v: %q", err, b.String())
	}
	if doc["msg"] != "parse failed" || doc["image"] != "db-02" || doc["level"] != "DEBUG" {
		t.Fatalf("json record = %v", doc)
	}
	if _, ok := doc["time"]; !ok {
		t.Fatalf("json record lost its timestamp: %v", doc)
	}
}

// TestNewLoggerRejectsUnknown checks flag validation errors.
func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "xml", "info"); err == nil {
		t.Fatal("want error for unknown format")
	}
	if _, err := NewLogger(&strings.Builder{}, "text", "loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
}

// TestSpanLogger checks span correlation: the derived logger stamps the
// span id and the span's attributes onto every record.
func TestSpanLogger(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	sp := r.StartSpan("scan.image", A("image", "web-01"), A("worker", "2"))
	sp.Logger(log).Info("checked")
	sp.End()
	got := b.String()
	for _, want := range []string{"span=1", "image=web-01", "worker=2", "msg=checked"} {
		if !strings.Contains(got, want) {
			t.Fatalf("span-correlated record missing %q: %q", want, got)
		}
	}
}

// TestSpanLoggerNilSafety pins the degenerate combinations: nil span, nil
// base, both nil. None may panic; records must still flow (or be silently
// discarded when there is nowhere to write).
func TestSpanLoggerNilSafety(t *testing.T) {
	var sp *Span
	sp.Logger(nil).Info("into the void")
	var b strings.Builder
	log, _ := NewLogger(&b, "text", "info")
	sp.Logger(log).Info("no span")
	if !strings.Contains(b.String(), "msg=\"no span\"") {
		t.Fatalf("nil span lost the base logger: %q", b.String())
	}
	r := New()
	live := r.StartSpan("x")
	live.Logger(nil).Info("discarded")
	live.End()
	if LoggerOr(nil) != NopLogger() {
		t.Fatal("LoggerOr(nil) is not the nop logger")
	}
	if LoggerOr(log) != log {
		t.Fatal("LoggerOr replaced a live logger")
	}
}
