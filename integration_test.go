package encore

// Cross-module integration tests: the full pipeline over every supported
// application, knowledge-profile round trips, and whole-pipeline
// properties.

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/inject"
	"repro/internal/sysimage"
)

// TestPipelineAllApps runs learn+check for each of the four supported
// applications on clean corpora: clean targets must not trigger
// correlation, type, or name warnings.
func TestPipelineAllApps(t *testing.T) {
	for _, app := range []string{"apache", "mysql", "php", "sshd"} {
		t.Run(app, func(t *testing.T) {
			training, err := corpus.Training(app, 60, 13)
			if err != nil {
				t.Fatal(err)
			}
			fw := New()
			k, err := fw.Learn(training)
			if err != nil {
				t.Fatal(err)
			}
			clean, err := corpus.Training(app, 1, 555)
			if err != nil {
				t.Fatal(err)
			}
			clean[0].ID = app + "-clean"
			report, err := fw.Check(k, clean[0])
			if err != nil {
				t.Fatal(err)
			}
			// Any data-driven learner carries some false rules (the paper
			// reports them in Table 12); a clean target may trip at most
			// one low-value boolean association, but never a type or name
			// violation.
			fpBudget := 1
			for _, w := range report.Warnings {
				switch w.Kind {
				case KindCorrelation:
					if w.Rule != nil && w.Rule.Template == "bool-implies" && fpBudget > 0 {
						fpBudget--
						continue
					}
					t.Errorf("clean %s target: %s: %s", app, w.Kind, w.Message)
				case KindType, KindName:
					t.Errorf("clean %s target: %s: %s", app, w.Kind, w.Message)
				}
			}
		})
	}
}

// TestSSHDDetectsBrokenChroot drives the fourth application end-to-end
// with a planted environment error.
func TestSSHDDetectsBrokenChroot(t *testing.T) {
	training, err := corpus.Training("sshd", 30, 17)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	victims, err := corpus.Training("sshd", 1, 18)
	if err != nil {
		t.Fatal(err)
	}
	victim := victims[0]
	victim.ID = "sshd-victim"
	// The chroot directory must be root-owned; chown it away.
	fm := victim.Lookup("/var/empty/sshd")
	if fm == nil {
		t.Fatal("chroot dir missing from corpus image")
	}
	fm.Owner = "sshd"
	fm.Mode = 0o777
	report, err := fw.Check(k, victim)
	if err != nil {
		t.Fatal(err)
	}
	rank := report.RankOf(func(w *Warning) bool {
		return strings.Contains(w.Attr, "ChrootDirectory")
	})
	if rank == 0 || rank > 3 {
		for _, w := range report.Warnings {
			t.Logf("%d %s %s", w.Rank, w.Kind, w.Message)
		}
		t.Fatalf("broken chroot rank = %d", rank)
	}
}

// TestInjectionAlwaysDetectable is a pipeline property: for many seeds,
// EnCore finds at least two thirds of injected configuration errors on a
// held-out image.
func TestInjectionAlwaysDetectable(t *testing.T) {
	training, err := corpus.Training("mysql", 50, 19)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		victims, err := corpus.Training("mysql", 1, 300+seed)
		if err != nil {
			t.Fatal(err)
		}
		victim := victims[0]
		victim.ID = "victim"
		injections, err := inject.New(seed).Inject(victim, "mysql", 10)
		if err != nil {
			t.Fatal(err)
		}
		report, err := fw.Check(k, victim)
		if err != nil {
			t.Fatal(err)
		}
		detected := 0
		for _, inj := range injections {
			for _, w := range report.Warnings {
				if inj.Matches(w.Attr) {
					detected++
					break
				}
			}
		}
		if detected*3 < len(injections)*2 {
			t.Errorf("seed %d: detected %d of %d", seed, detected, len(injections))
		}
	}
}

// TestProfileRoundTripProperty: exporting and re-importing knowledge never
// changes a report, across corpora seeds.
func TestProfileRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		seed = seed%100 + 1
		training, err := corpus.Training("php", 20, seed)
		if err != nil {
			return false
		}
		fw := New()
		k, err := fw.Learn(training)
		if err != nil {
			return false
		}
		data, err := k.Profile().Marshal()
		if err != nil {
			return false
		}
		p, err := LoadProfile(data)
		if err != nil {
			return false
		}
		target := corpus.RealWorldCases()[1].Build()
		live, err := fw.Check(k, target)
		if err != nil {
			return false
		}
		fromProfile, err := fw.CheckWithProfile(p, target)
		if err != nil {
			return false
		}
		if len(live.Warnings) != len(fromProfile.Warnings) {
			return false
		}
		for i := range live.Warnings {
			if live.Warnings[i].Attr != fromProfile.Warnings[i].Attr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestLearnDeterministic: the same corpus always yields the same rules.
func TestLearnDeterministic(t *testing.T) {
	training, err := corpus.Training("apache", 30, 23)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	a, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i].Key() != b.Rules[i].Key() {
			t.Fatalf("rule %d differs: %s vs %s", i, a.Rules[i], b.Rules[i])
		}
	}
}

// TestImageJSONThroughPipeline: images survive a disk round trip and
// produce identical reports.
func TestImageJSONThroughPipeline(t *testing.T) {
	training, err := corpus.Training("mysql", 15, 29)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sysimage.SaveDir(dir, training); err != nil {
		t.Fatal(err)
	}
	loaded, err := sysimage.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fw := New()
	k1, err := fw.Learn(training)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := fw.Learn(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1.Rules) != len(k2.Rules) {
		t.Fatalf("rules differ after disk round trip: %d vs %d", len(k1.Rules), len(k2.Rules))
	}
}
