package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProgressFinalLine checks the summary printed at Stop: totals, the
// finding count, and no ETA on the final line.
func TestProgressFinalLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "scan", 10, time.Hour) // ticker never fires
	for i := 0; i < 10; i++ {
		p.Step(2)
	}
	p.Stop()
	out := buf.String()
	if !strings.HasPrefix(out, "scan: 10/10 images, 20 findings, elapsed ") {
		t.Fatalf("final line = %q", out)
	}
	if strings.Contains(out, "eta") {
		t.Fatalf("final line should not carry an ETA: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("expected exactly one line, got %q", out)
	}
}

// syncWriter lets the test poll output while the reporter's ticker
// goroutine is still writing.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestProgressPeriodicReports checks the ticker goroutine emits interim
// lines (with an ETA while mid-run) before the final summary.
func TestProgressPeriodicReports(t *testing.T) {
	var w syncWriter
	p := NewProgress(&w, "scan", 4, time.Millisecond)
	p.Step(1)
	p.Step(1)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(w.String(), "scan: 2/4") {
		if time.Now().After(deadline) {
			t.Fatalf("no interim report after 2/4 steps; output = %q", w.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.Step(1)
	p.Step(1)
	p.Stop()
	out := w.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected interim + final lines, got %q", out)
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "scan: 4/4 images, 4 findings") {
		t.Fatalf("final line = %q", last)
	}
	etaSeen := false
	for _, l := range lines[:len(lines)-1] {
		if strings.Contains(l, "eta ") {
			etaSeen = true
		}
	}
	if !etaSeen {
		t.Fatalf("no interim line carried an ETA: %q", out)
	}
}

// TestProgressNilAndIdempotent pins nil safety and double-Stop.
func TestProgressNilAndIdempotent(t *testing.T) {
	var p *Progress
	p.Step(3)
	p.Stop()
	p.Stop()

	q := NewProgress(io.Discard, "x", 1, 0) // default interval path
	q.Step(1)
	q.Stop()
	q.Stop() // second Stop must not panic or double-report
}

// TestProgressConcurrentSteps drives Step from many goroutines under the
// race detector, mirroring how the scan pool uses it.
func TestProgressConcurrentSteps(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "scan", 64, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				p.Step(1)
			}
		}()
	}
	wg.Wait()
	p.Stop()
	if !strings.Contains(buf.String(), "scan: 64/64 images, 64 findings") {
		t.Fatalf("output = %q", buf.String())
	}
}
