// Package baseline implements the two comparison detectors of Table 8.
//
// Baseline is a value-comparison detector in the spirit of PeerPressure /
// Strider: for every configuration entry it compares the target's value
// against the value distribution in the training set and flags values that
// deviate, ranked by how stable the entry historically was. It sees only
// the textual values of configuration entries — no environment, no
// correlations.
//
// BaselineEnv is the same statistical detector run over the
// environment-augmented attribute set ("Baseline+Env" in the paper): it
// additionally compares the augmented attributes (datadir.owner,
// extension_dir.type, ...), so purely environmental deviations become
// visible, but it still knows nothing about correlations between entries.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/assemble"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/sysimage"
)

// Finding is one flagged deviation.
type Finding struct {
	Attr    string
	Value   string
	Message string
	Score   float64
	Rank    int
}

// Detector is a value-comparison misconfiguration detector.
type Detector struct {
	Training *dataset.Dataset
	// IncludeAugmented switches between Baseline (false) and Baseline+Env
	// (true).
	IncludeAugmented bool
	// MaxCardinality is the peer-agreement gate: a deviation is only
	// flagged when the training set showed at most this many distinct
	// values for the entry. This models PeerPressure's statistical
	// behaviour — when peers disagree wildly (file paths!), a new value is
	// not evidence of sickness, which is exactly the limitation the paper
	// exploits.
	MaxCardinality int
	Assembler      *assemble.Assembler
}

// DefaultMaxCardinality is the default peer-agreement gate: entries with at
// most this many distinct training values are considered concentrated
// enough that a deviation is significant.
const DefaultMaxCardinality = 2

// NewBaseline returns the plain value-comparison detector.
func NewBaseline(training *dataset.Dataset) *Detector {
	return &Detector{Training: training, MaxCardinality: DefaultMaxCardinality, Assembler: assemble.New()}
}

// NewBaselineEnv returns the environment-aware value-comparison detector.
func NewBaselineEnv(training *dataset.Dataset) *Detector {
	return &Detector{Training: training, IncludeAugmented: true, MaxCardinality: DefaultMaxCardinality, Assembler: assemble.New()}
}

// Check assembles the target and reports value deviations ranked by
// inverse change frequency.
func (b *Detector) Check(img *sysimage.Image) ([]*Finding, error) {
	target, err := b.Assembler.AssembleTarget(img, b.Training)
	if err != nil {
		return nil, err
	}
	row := target.Rows[0]
	samples := len(b.Training.Rows)

	var findings []*Finding
	for attr, values := range row.Cells {
		a, ok := b.Training.Attr(attr)
		if !ok {
			// An entry absent from the peer database has no value
			// distribution to compare against; the statistical model has
			// nothing to say about it (misspelled entries therefore
			// escape the baselines entirely).
			continue
		}
		if a.Augmented && !b.IncludeAugmented {
			continue
		}
		if b.Training.Present(attr) == 0 {
			continue
		}
		seen := map[string]bool{}
		for _, v := range b.Training.Column(attr) {
			seen[v] = true
		}
		if b.MaxCardinality > 0 && len(seen) > b.MaxCardinality {
			continue // peers disagree: a new value is not anomalous
		}
		for _, v := range values {
			if seen[v] {
				continue
			}
			icf := stats.ICF(len(seen), samples)
			findings = append(findings, &Finding{
				Attr:    attr,
				Value:   v,
				Message: fmt.Sprintf("value %q of %s deviates from all %d training systems", v, attr, samples),
				Score:   icf,
			})
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Score != findings[j].Score {
			return findings[i].Score > findings[j].Score
		}
		return findings[i].Attr < findings[j].Attr
	})
	for i, f := range findings {
		f.Rank = i + 1
	}
	return findings, nil
}

func first(vs []string) string {
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Flagged reports whether any finding concerns the attribute.
func Flagged(findings []*Finding, attr string) bool {
	for _, f := range findings {
		if f.Attr == attr {
			return true
		}
	}
	return false
}

// FlaggedPrefix reports whether any finding concerns the attribute or one
// of its augmented attributes (attr + "." + suffix).
func FlaggedPrefix(findings []*Finding, attr string) bool {
	for _, f := range findings {
		if f.Attr == attr || (len(f.Attr) > len(attr) && f.Attr[:len(attr)] == attr && f.Attr[len(attr)] == '.') {
			return true
		}
	}
	return false
}
