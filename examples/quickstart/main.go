// Quickstart: learn configuration rules from a small synthetic MySQL
// corpus, inject random errors into a held-out image, and print the ranked
// anomaly report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	encore "repro"
	"repro/internal/corpus"
	"repro/internal/inject"
)

func main() {
	// 1. A training set: 60 clean, internally coherent MySQL images.
	training, err := corpus.Training("mysql", 60, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Learn: assemble (parse + type inference + environment
	//    augmentation) and infer correlation rules from the templates.
	fw := encore.New()
	knowledge, err := fw.Learn(training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d rules from %d images; examples:\n", len(knowledge.Rules), len(training))
	for i, r := range knowledge.Rules {
		if i == 5 {
			break
		}
		fmt.Printf("  - %s\n", r)
	}

	// 3. A victim: a held-out image with 8 injected configuration errors.
	victims, err := corpus.Training("mysql", 1, 99)
	if err != nil {
		log.Fatal(err)
	}
	victim := victims[0]
	victim.ID = "victim"
	injections, err := inject.New(7).Inject(victim, "mysql", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected %d errors:\n", len(injections))
	for _, inj := range injections {
		fmt.Printf("  - %s\n", inj)
	}

	// 4. Check: the detector runs the four anomaly checks and ranks the
	//    warnings.
	report, err := fw.Check(knowledge, victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d warnings (most severe first):\n", len(report.Warnings))
	for _, w := range report.Warnings {
		fmt.Printf("%3d. [%-16s] %s\n", w.Rank, w.Kind, w.Message)
	}

	// 5. Remediation advice: the violated relations say what must be
	//    restored; the training distributions say what the fleet does.
	advice := knowledge.Advise(report)
	fmt.Printf("\nremediation advice:\n%s", encore.RenderAdvice(advice))
}
