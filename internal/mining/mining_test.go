package mining

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// classic is a small, hand-checkable transaction database.
//
//	t0: {0,1,2}  t1: {0,1}  t2: {0,2}  t3: {1,2}  t4: {0,1,2}
//
// With minSupport=3: frequent singletons {0}:4 {1}:4 {2}:4; pairs
// {0,1}:3 {0,2}:3 {1,2}:3; triple {0,1,2}:2 (infrequent).
var classic = [][]int{
	{0, 1, 2},
	{0, 1},
	{0, 2},
	{1, 2},
	{0, 1, 2},
}

func supports(res *Result) map[string]int {
	out := map[string]int{}
	for _, s := range res.Sets {
		out[keyOf(s.Items)] = s.Support
	}
	return out
}

func miners() []Miner {
	return []Miner{&Apriori{}, &FPGrowth{}}
}

func TestClassicDatabase(t *testing.T) {
	for _, m := range miners() {
		res, err := m.Mine(classic, 3)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got := supports(res)
		want := map[string]int{
			keyOf([]int{0}):    4,
			keyOf([]int{1}):    4,
			keyOf([]int{2}):    4,
			keyOf([]int{0, 1}): 3,
			keyOf([]int{0, 2}): 3,
			keyOf([]int{1, 2}): 3,
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sets = %v, want %v", m.Name(), got, want)
		}
	}
}

func TestTripleFrequent(t *testing.T) {
	for _, m := range miners() {
		res, err := m.Mine(classic, 2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got := supports(res)
		if got[keyOf([]int{0, 1, 2})] != 2 {
			t.Fatalf("%s: triple support = %d, want 2", m.Name(), got[keyOf([]int{0, 1, 2})])
		}
		if len(res.Sets) != 7 {
			t.Fatalf("%s: count = %d, want 7", m.Name(), len(res.Sets))
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	for _, m := range miners() {
		res, err := m.Mine(nil, 1)
		if err != nil || len(res.Sets) != 0 {
			t.Fatalf("%s: empty db: %v %v", m.Name(), res.Sets, err)
		}
		res, err = m.Mine([][]int{{}, {}}, 1)
		if err != nil || len(res.Sets) != 0 {
			t.Fatalf("%s: empty txns: %v %v", m.Name(), res.Sets, err)
		}
		// minSupport below 1 is clamped.
		res, err = m.Mine([][]int{{1}}, 0)
		if err != nil || len(res.Sets) != 1 {
			t.Fatalf("%s: clamp: %v %v", m.Name(), res.Sets, err)
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	// A dense database: 12 items always together => 2^12-1 frequent sets.
	txn := make([]int, 12)
	for i := range txn {
		txn[i] = i
	}
	db := [][]int{txn, txn, txn}
	for _, m := range []Miner{&Apriori{MaxSets: 100}, &FPGrowth{MaxSets: 100}} {
		_, err := m.Mine(db, 2)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: err = %v, want budget exceeded", m.Name(), err)
		}
	}
	// Without a budget both finish and agree on the count.
	a, err := (&Apriori{}).Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (&FPGrowth{}).Mine(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != (1<<12)-1 || f.Count != a.Count {
		t.Fatalf("counts: apriori=%d fp=%d want %d", a.Count, f.Count, (1<<12)-1)
	}
}

func TestMinersAgreeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nItems := 8 + rng.Intn(6)
		var db [][]int
		for i := 0; i < 30; i++ {
			var txn []int
			for it := 0; it < nItems; it++ {
				if rng.Intn(3) == 0 {
					txn = append(txn, it)
				}
			}
			db = append(db, txn)
		}
		min := 2 + rng.Intn(4)
		a, errA := (&Apriori{}).Mine(db, min)
		f, errF := (&FPGrowth{}).Mine(db, min)
		if errA != nil || errF != nil {
			t.Fatalf("trial %d: %v %v", trial, errA, errF)
		}
		sa, sf := supports(a), supports(f)
		if !reflect.DeepEqual(sa, sf) {
			t.Fatalf("trial %d: miners disagree: apriori %d sets, fp %d sets", trial, len(sa), len(sf))
		}
	}
}

func TestDownwardClosureProperty(t *testing.T) {
	// Property: every subset of a frequent set is frequent with at least
	// the same support.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var db [][]int
		for i := 0; i < 20; i++ {
			var txn []int
			for it := 0; it < 10; it++ {
				if rng.Intn(2) == 0 {
					txn = append(txn, it)
				}
			}
			db = append(db, txn)
		}
		res, err := (&FPGrowth{}).Mine(db, 3)
		if err != nil {
			return false
		}
		sup := supports(res)
		for _, s := range res.Sets {
			if len(s.Items) < 2 {
				continue
			}
			sub := make([]int, 0, len(s.Items)-1)
			for skip := range s.Items {
				sub = sub[:0]
				for i, it := range s.Items {
					if i != skip {
						sub = append(sub, it)
					}
				}
				if sup[keyOf(sub)] < s.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResultDeterministic(t *testing.T) {
	for _, m := range miners() {
		a, _ := m.Mine(classic, 2)
		b, _ := m.Mine(classic, 2)
		if !reflect.DeepEqual(a.Sets, b.Sets) {
			t.Fatalf("%s: nondeterministic output ordering", m.Name())
		}
	}
}

func TestNames(t *testing.T) {
	if (&Apriori{}).Name() != "apriori" || (&FPGrowth{}).Name() != "fp-growth" {
		t.Fatal("miner names wrong")
	}
}

func TestKeyOfDistinct(t *testing.T) {
	if keyOf([]int{1, 2}) == keyOf([]int{1, 3}) || keyOf([]int{1}) == keyOf([]int{1, 0}) {
		t.Fatal("keyOf collision")
	}
}
