// Incremental dataset maintenance: batch row addition and retirement that
// update the cached columnar Index by copy-on-write delta instead of
// discarding it.
//
// The delta snapshots share *colStats pointers for columns the batch did
// not touch. A shared column's bitset keeps its pre-delta word count —
// shorter than the new snapshot's — which readers treat as implicit
// trailing zeros (CoSupport and the rule engine's co-occurrence sweep both
// clamp to the shorter set). Touched columns are deep-copied and their
// entropy/cardinality recomputed with the same first-appearance-order
// accumulation buildIndex uses, so a delta-maintained index is
// field-for-field identical (floats included) to one rebuilt from scratch
// over the same rows. Row retirement compacts in order — never
// swap-removes — precisely to preserve that accumulation order.
package dataset

import (
	"sort"

	"repro/internal/conftypes"
)

// AddRows appends assembled rows to the dataset in order, declaring any
// attribute the rows mention that is not yet a column (sorted by name, so
// column order is deterministic; first declaration wins, with type String
// exactly as Add would declare it). If a columnar snapshot is cached it is
// replaced with a delta snapshot in O(touched columns + Δrows) instead of
// being discarded.
func (d *Dataset) AddRows(rows ...*Row) {
	if len(rows) == 0 {
		return
	}
	var newNames []string
	for _, row := range rows {
		for name := range row.Cells {
			if _, ok := d.index[name]; !ok {
				d.index[name] = -1 // placeholder to dedup within the batch
				newNames = append(newNames, name)
			}
		}
	}
	for _, name := range newNames {
		delete(d.index, name)
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		d.DeclareAttr(name, conftypes.TypeString, false)
	}
	base := len(d.Rows)
	d.Rows = append(d.Rows, rows...)
	if ix := d.idx.Load(); ix != nil {
		d.idx.Store(ix.withRowsAdded(rows, base))
	}
}

// RetireRows removes every row whose SystemID is in ids, preserving the
// order of the remaining rows, and returns the removed rows in their
// original order. Columns stay declared even if the retirement empties
// them. A cached columnar snapshot is updated by delta: untouched columns
// keep their memoized statistics, touched ones are recomputed.
func (d *Dataset) RetireRows(ids ...string) []*Row {
	if len(ids) == 0 {
		return nil
	}
	retire := make(map[string]bool, len(ids))
	for _, id := range ids {
		retire[id] = true
	}
	removedAt := make([]bool, len(d.Rows))
	var removed []*Row
	kept := d.Rows[:0]
	for i, row := range d.Rows {
		if retire[row.SystemID] {
			removedAt[i] = true
			removed = append(removed, row)
			continue
		}
		kept = append(kept, row)
	}
	if len(removed) == 0 {
		return nil
	}
	for i := len(kept); i < len(d.Rows); i++ {
		d.Rows[i] = nil // release retired row pointers from the backing array
	}
	d.Rows = kept
	if ix := d.idx.Load(); ix != nil {
		d.idx.Store(ix.withRowsRetired(removedAt))
	}
	return removed
}

// withRowsAdded builds the post-append snapshot: columns untouched by the
// new rows are shared (their shorter bitsets read as implicit zeros for
// the new rows), touched columns are copied, extended, and re-memoized.
func (ix *Index) withRowsAdded(rows []*Row, base int) *Index {
	nrows := base + len(rows)
	nwords := (nrows + 63) / 64
	nix := &Index{rows: nrows, words: nwords, cols: make(map[string]*colStats, len(ix.cols))}
	for name, c := range ix.cols {
		nix.cols[name] = c
	}
	touched := make(map[string]*colStats)
	touch := func(name string) *colStats {
		if c, ok := touched[name]; ok {
			return c
		}
		c := &colStats{bits: make([]uint64, nwords), rowVals: make([][]string, nrows)}
		if old, ok := nix.cols[name]; ok {
			copy(c.bits, old.bits)
			copy(c.rowVals, old.rowVals)
			c.present, c.instances = old.present, old.instances
		}
		touched[name] = c
		nix.cols[name] = c
		return c
	}
	for i, row := range rows {
		r := base + i
		for name, vs := range row.Cells {
			if len(vs) == 0 {
				continue
			}
			c := touch(name)
			c.bits[r>>6] |= 1 << (r & 63)
			c.rowVals[r] = vs
			c.present++
			c.instances += len(vs)
		}
	}
	for _, c := range touched {
		c.entropy, c.card = entropyAndCardinality(c.rowVals, c.instances)
	}
	return nix
}

// withRowsRetired builds the post-retirement snapshot. removedAt marks the
// retired positions in the pre-retirement row order. Every column is
// re-packed (row indices shift), but only columns that actually lost cells
// pay the entropy recomputation — for the rest the surviving value
// sequence is unchanged, so the memoized statistics are carried over.
func (ix *Index) withRowsRetired(removedAt []bool) *Index {
	nrows := ix.rows
	for _, rm := range removedAt {
		if rm {
			nrows--
		}
	}
	nwords := (nrows + 63) / 64
	nix := &Index{rows: nrows, words: nwords, cols: make(map[string]*colStats, len(ix.cols))}
	for name, old := range ix.cols {
		c := &colStats{bits: make([]uint64, nwords), rowVals: make([][]string, nrows)}
		w := 0
		for r := 0; r < ix.rows; r++ {
			if r < len(removedAt) && removedAt[r] {
				continue
			}
			var vs []string
			if r < len(old.rowVals) {
				vs = old.rowVals[r]
			}
			if len(vs) > 0 {
				c.bits[w>>6] |= 1 << (w & 63)
				c.rowVals[w] = vs
				c.present++
				c.instances += len(vs)
			}
			w++
		}
		if c.present == old.present {
			c.entropy, c.card = old.entropy, old.card
		} else {
			c.entropy, c.card = entropyAndCardinality(c.rowVals, c.instances)
		}
		nix.cols[name] = c
	}
	return nix
}
