#!/bin/sh
# End-to-end smoke of the fleet coordinator: build a stamped binary,
# compile a plan, push a 1k-image synthetic fleet through the sharded
# CLI path (constant-memory aggregation, stats snapshot carrying the
# encore_fleet_* families), then boot the resident daemon and stream the
# same fleet through the NDJSON batch endpoint, asserting the per-image
# lines, the trailing summary, and the fleet metric families on
# /metrics. SIGTERM the daemon and require a clean exit.
set -eu

GO=${GO:-go}
VERSION=${VERSION:-smoke}
FLEET=${FLEET:-1000}
DIR=${TMPDIR:-/tmp}/encore-fleet-smoke
rm -rf "$DIR" && mkdir -p "$DIR/plans"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "fleet-smoke: building stamped binary"
$GO build -ldflags "-X main.version=$VERSION" -o "$DIR/encore" ./cmd/encore
"$DIR/encore" version | grep -q "encore $VERSION"

echo "fleet-smoke: generating corpus + compiling plan"
$GO run ./cmd/imagegen -app mysql -n 10 -seed 7 -out "$DIR/training" >/dev/null
$GO run ./cmd/imagegen -app mysql -n 4 -seed 91 -out "$DIR/targets" >/dev/null
"$DIR/encore" compile -training "$DIR/training" -plan-out "$DIR/plans/mysql.plan" >/dev/null

echo "fleet-smoke: scanning $FLEET synthetic images through the sharded CLI"
"$DIR/encore" scan -plan "$DIR/plans/mysql.plan" -targets "$DIR/targets" \
    -fleet "$FLEET" -shards 4 -stats-json "$DIR/stats.json" \
    > "$DIR/scan.out" 2> "$DIR/scan.err"
grep -q "scanned $FLEET images" "$DIR/scan.out"
grep -q "fleet: 4 shards" "$DIR/scan.err"
for fam in encore_fleet_images_total encore_fleet_batches_total encore_fleet_shards; do
    grep -q "$fam" "$DIR/stats.json" || { echo "fleet-smoke: stats.json missing $fam"; exit 1; }
done

echo "fleet-smoke: booting daemon"
"$DIR/encore" serve -addr 127.0.0.1:0 -addr-file "$DIR/addr" -plans "$DIR/plans" \
    -shutdown-timeout 5s -log-level warn &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    [ -s "$DIR/addr" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "fleet-smoke: daemon died during boot"; exit 1; }
    sleep 0.1
done
[ -s "$DIR/addr" ] || { echo "fleet-smoke: daemon never wrote addr-file"; exit 1; }
BASE="http://$(cat "$DIR/addr" | tr -d '[:space:]')"
echo "fleet-smoke: daemon at $BASE"
curl -fsS "$BASE/readyz" | grep -q '"ready"'

echo "fleet-smoke: streaming $FLEET synthetic images through the batch endpoint"
curl -fsS -X POST "$BASE/v1/scan/mysql/batch?dir=$DIR/targets&synthetic=$FLEET&shards=4" \
    > "$DIR/batch.ndjson"
LINES=$(grep -c '"index"' "$DIR/batch.ndjson")
[ "$LINES" -eq "$FLEET" ] || { echo "fleet-smoke: batch streamed $LINES lines, want $FLEET"; exit 1; }
grep -q '"summary":true' "$DIR/batch.ndjson"
grep -q "\"images\":$FLEET" "$DIR/batch.ndjson"
grep -q '"shards":4' "$DIR/batch.ndjson"

echo "fleet-smoke: checking fleet metric families"
curl -fsS "$BASE/metrics" > "$DIR/metrics.prom"
for fam in encore_fleet_images_total encore_fleet_batches_total encore_fleet_shards \
    encore_fleet_inflight_highwater_bytes; do
    grep -q "$fam" "$DIR/metrics.prom" || { echo "fleet-smoke: /metrics missing $fam"; exit 1; }
done

echo "fleet-smoke: graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "fleet-smoke: daemon exited non-zero"; exit 1; }
DAEMON_PID=""

echo "fleet-smoke: fleet coordinator OK"
