package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// Sampler default cadence and ring capacity: one sample per second kept
// for ten minutes. Long batches see a sliding window; short runs keep
// every sample.
const (
	DefaultSampleInterval = time.Second
	defaultSampleCapacity = 600
)

// RuntimeSample is one point-in-time reading of process health taken by
// the Sampler: heap pressure, GC activity, goroutine count, and — when a
// Progress reporter is attached — batch progress.
type RuntimeSample struct {
	// At is the offset from the sampler's start (the recorder epoch when
	// the sampler is attached via Recorder.AttachSampler before Start).
	At time.Duration
	// HeapBytes is runtime.MemStats.HeapAlloc.
	HeapBytes uint64
	// GCPauseTotal is the cumulative stop-the-world pause time.
	GCPauseTotal time.Duration
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32
	// Goroutines is the live goroutine count.
	Goroutines int
	// ProgressDone/ProgressTotal mirror the attached Progress reporter
	// (both 0 when none is attached).
	ProgressDone  int64
	ProgressTotal int64
}

// Sampler periodically records RuntimeSamples into a fixed-size ring
// buffer. It is safe for concurrent use, and every method is nil-receiver
// safe so pipelines can thread one through unconditionally. Start launches
// the background ticker; Stop takes one final sample and waits for the
// ticker goroutine to exit, so a stopped sampler leaks nothing.
type Sampler struct {
	interval time.Duration

	mu       sync.Mutex
	epoch    time.Time
	ring     []RuntimeSample
	next     int // ring write cursor
	filled   bool
	progress *Progress

	quit chan struct{}
	wg   sync.WaitGroup
	stop sync.Once
}

// NewSampler returns a stopped sampler. interval <= 0 means
// DefaultSampleInterval; capacity <= 0 means the default ten-minute ring.
func NewSampler(interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = defaultSampleCapacity
	}
	return &Sampler{
		interval: interval,
		epoch:    time.Now(),
		ring:     make([]RuntimeSample, capacity),
		quit:     make(chan struct{}),
	}
}

// Interval reports the sampling cadence (0 on a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// SetEpoch aligns sample offsets with an external clock origin (the
// recorder's epoch, so snapshot spans and runtime samples share a
// timeline). Call before Start. Safe on a nil sampler.
func (s *Sampler) SetEpoch(epoch time.Time) {
	if s == nil || epoch.IsZero() {
		return
	}
	s.mu.Lock()
	s.epoch = epoch
	s.mu.Unlock()
}

// SetProgress attaches the batch progress source folded into every
// subsequent sample. Safe on a nil sampler.
func (s *Sampler) SetProgress(p *Progress) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.progress = p
	s.mu.Unlock()
}

// Start records one immediate sample and launches the ticker goroutine.
// Safe on a nil sampler; starting twice is a no-op for the second caller
// only if Stop was not called in between (don't).
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.sampleNow()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.sampleNow()
			case <-s.quit:
				return
			}
		}
	}()
}

// Stop halts the ticker, waits for the goroutine to exit, and records one
// final sample so even sub-interval runs end with a fresh reading. Safe on
// a nil sampler and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stop.Do(func() {
		close(s.quit)
		s.wg.Wait()
		s.sampleNow()
	})
}

// sampleNow takes one reading and pushes it into the ring.
func (s *Sampler) sampleNow() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sample := RuntimeSample{
		HeapBytes:    ms.HeapAlloc,
		GCPauseTotal: time.Duration(ms.PauseTotalNs),
		GCCycles:     ms.NumGC,
		Goroutines:   runtime.NumGoroutine(),
	}
	s.mu.Lock()
	sample.At = time.Since(s.epoch)
	if p := s.progress; p != nil {
		sample.ProgressDone = p.Done()
		sample.ProgressTotal = p.Total()
	}
	s.record(sample)
	s.mu.Unlock()
}

// record pushes one sample; callers hold s.mu.
func (s *Sampler) record(sample RuntimeSample) {
	s.ring[s.next] = sample
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.filled = true
	}
}

// Samples returns the buffered timeseries oldest-first. Safe on a nil
// sampler (returns nil).
func (s *Sampler) Samples() []RuntimeSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.filled {
		return append([]RuntimeSample(nil), s.ring[:s.next]...)
	}
	out := make([]RuntimeSample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Latest returns the most recent sample. ok is false when no sample has
// been taken yet or the sampler is nil.
func (s *Sampler) Latest() (sample RuntimeSample, ok bool) {
	if s == nil {
		return RuntimeSample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next == 0 && !s.filled {
		return RuntimeSample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	return s.ring[i], true
}
