package confparse

import (
	"fmt"
	"strings"
)

// SSHDDialect parses the flat keyword-argument format of sshd_config:
// "Keyword value [value...]" lines, '#' comments, and Match blocks which
// scope subsequent keywords (modeled as a section).
type SSHDDialect struct{}

// NewSSHDDialect returns the dialect for sshd_config.
func NewSSHDDialect() *SSHDDialect { return &SSHDDialect{} }

// Name implements Dialect.
func (d *SSHDDialect) Name() string { return "sshd" }

// Parse implements Dialect.
func (d *SSHDDialect) Parse(content string) ([]*Entry, error) {
	var entries []*Entry
	section := ""
	for lineNo, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(stripComment(raw, "#"))
		if line == "" {
			continue
		}
		fields := splitArgs(line)
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "Match") {
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: Match with no criteria", lineNo+1)
			}
			section = "Match:" + strings.Join(fields[1:], ":")
			continue
		}
		entries = append(entries, &Entry{
			Section: section,
			Key:     fields[0],
			Values:  fields[1:],
			Line:    lineNo + 1,
		})
	}
	return entries, nil
}

// Render implements Dialect.
func (d *SSHDDialect) Render(entries []*Entry) string {
	var b strings.Builder
	current := ""
	for _, e := range entries {
		if e.Section != current {
			current = e.Section
			if current != "" {
				crit := strings.ReplaceAll(strings.TrimPrefix(current, "Match:"), ":", " ")
				fmt.Fprintf(&b, "Match %s\n", crit)
			}
		}
		indent := ""
		if current != "" {
			indent = "    "
		}
		if len(e.Values) > 0 {
			fmt.Fprintf(&b, "%s%s %s\n", indent, e.Key, strings.Join(quoteArgs(e.Values), " "))
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, e.Key)
		}
	}
	return b.String()
}
