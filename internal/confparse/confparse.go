// Package confparse converts application-specific configuration files into
// uniform key-value entries, and renders them back to text.
//
// It plays the role Augeas plays in the paper: a pluggable parser framework
// where each supported format is a Dialect. Three families cover the four
// studied applications: the Apache directive format (with nested sections),
// the INI format (MySQL my.cnf and PHP php.ini), and the flat
// keyword-argument format of sshd_config.
//
// Parsed entries keep their section context, argument positions, and source
// line so that (a) the assembler can build stable attribute names like
// "mysqld/datadir" or "LoadModule/arg2", and (b) the error injector can
// mutate entries and render a faithful file back.
package confparse

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/intern"
)

// Entry is one configuration setting: a key with one or more positional
// argument values, inside an optional (possibly nested) section.
type Entry struct {
	// Section is the section path: "" at top level, "mysqld" inside
	// [mysqld], "VirtualHost:*:80/Directory:/var/www" for nested Apache
	// sections.
	Section string
	// Key is the directive or option name as written.
	Key string
	// Values holds the positional arguments. Simple k=v options have one
	// value; Apache directives may have several. Bare boolean flags
	// (e.g. MySQL's skip-networking) have none.
	Values []string
	// Line is the 1-based source line, 0 for synthesized entries.
	Line int
	// IsSection marks a pseudo-entry emitted for a section container
	// itself (e.g. Apache's <Directory /var/www>), so that section
	// arguments participate in correlation learning as values. Dialects
	// that emit these must not render them as plain directives.
	IsSection bool
}

// Name returns the canonical attribute base name for the entry:
// section path and key joined with '/'.
func (e *Entry) Name() string {
	if e.Section == "" {
		return e.Key
	}
	return e.Section + "/" + e.Key
}

// Value returns the single joined value of the entry (arguments joined with
// a space), or "" for flag entries.
func (e *Entry) Value() string {
	return strings.Join(e.Values, " ")
}

// File is a parsed configuration file.
type File struct {
	App     string
	Path    string
	Entries []*Entry
}

// Dialect parses and renders one configuration format.
type Dialect interface {
	// Name identifies the dialect ("apache", "ini", "sshd").
	Name() string
	// Parse converts raw text to entries.
	Parse(content string) ([]*Entry, error)
	// Render serializes entries back to a file in this format. Rendering
	// a Parse result must re-parse to the same entries (round-trip).
	Render(entries []*Entry) string
}

var dialects = map[string]Dialect{}

// Register installs a dialect under the given application names. It backs
// the extensibility Augeas offers: users can import their own parsers.
func Register(d Dialect, apps ...string) {
	for _, app := range apps {
		dialects[app] = d
	}
}

// ForApp returns the dialect registered for an application.
func ForApp(app string) (Dialect, error) {
	d, ok := dialects[app]
	if !ok {
		known := make([]string, 0, len(dialects))
		for k := range dialects {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("confparse: no dialect for app %q (known: %s)", app, strings.Join(known, ", "))
	}
	return d, nil
}

// Parse parses content using the dialect registered for app. Entry keys
// and section paths are interned: dialects return them as substrings of
// content, so canonicalizing here both deduplicates the (small, endlessly
// repeated) key vocabulary across a corpus and stops retained entries
// from pinning whole file contents.
func Parse(app, path, content string) (*File, error) {
	d, err := ForApp(app)
	if err != nil {
		return nil, err
	}
	entries, err := d.Parse(content)
	if err != nil {
		return nil, fmt.Errorf("confparse: %s (%s): %w", app, path, err)
	}
	for _, e := range entries {
		e.Key = intern.String(e.Key)
		e.Section = intern.String(e.Section)
	}
	return &File{App: app, Path: path, Entries: entries}, nil
}

// Render serializes the file using its app's dialect.
func Render(f *File) (string, error) {
	d, err := ForApp(f.App)
	if err != nil {
		return "", err
	}
	return d.Render(f.Entries), nil
}

// Find returns all entries whose canonical name matches name.
func (f *File) Find(name string) []*Entry {
	var out []*Entry
	for _, e := range f.Entries {
		if e.Name() == name {
			out = append(out, e)
		}
	}
	return out
}

// FindKey returns all entries with the given key, in any section.
func (f *File) FindKey(key string) []*Entry {
	var out []*Entry
	for _, e := range f.Entries {
		if e.Key == key {
			out = append(out, e)
		}
	}
	return out
}

// Remove deletes the first entry with the canonical name; it reports
// whether an entry was removed.
func (f *File) Remove(name string) bool {
	for i, e := range f.Entries {
		if e.Name() == name {
			f.Entries = append(f.Entries[:i], f.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// Set replaces the value of the first entry with the canonical name, or
// appends a new top-level entry when absent.
func (f *File) Set(name string, values ...string) {
	for _, e := range f.Entries {
		if e.Name() == name {
			e.Values = values
			return
		}
	}
	section, key := "", name
	if i := strings.LastIndex(name, "/"); i >= 0 {
		section, key = name[:i], name[i+1:]
	}
	f.Entries = append(f.Entries, &Entry{Section: section, Key: key, Values: values})
}

// Clone returns a deep copy of the file, so injectors can mutate safely.
func (f *File) Clone() *File {
	c := &File{App: f.App, Path: f.Path, Entries: make([]*Entry, len(f.Entries))}
	for i, e := range f.Entries {
		dup := *e
		dup.Values = append([]string(nil), e.Values...)
		c.Entries[i] = &dup
	}
	return c
}

func init() {
	Register(NewApacheDialect(), "apache", "httpd")
	Register(NewINIDialect("#", ";"), "mysql", "php")
	Register(NewSSHDDialect(), "sshd")
}
