package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// get fetches a server path and returns the body and content type.
func get(t *testing.T, srv *Server, path string) (string, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerEndpoints starts a real server on a free port and checks every
// endpoint serves the recorder's live state.
func TestServerEndpoints(t *testing.T) {
	r := New()
	r.SetPhase("scan")
	r.Add(CounterImagesScanned, 3)
	srv, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	metrics, ctype := get(t, srv, "/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "encore_scan_images_total 3\n") {
		t.Fatalf("/metrics missing live counter:\n%s", metrics)
	}

	health, ctype := get(t, srv, "/healthz")
	if ctype != "application/json" {
		t.Fatalf("/healthz content type = %q", ctype)
	}
	var doc struct {
		Status        string  `json:"status"`
		Phase         string  `json:"phase"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}
	if err := json.Unmarshal([]byte(health), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Phase != "scan" || doc.UptimeSeconds < 0 {
		t.Fatalf("/healthz = %+v", doc)
	}

	// /metrics re-renders per request: a counter bump is visible live.
	r.Add(CounterImagesScanned, 2)
	if metrics, _ := get(t, srv, "/metrics"); !strings.Contains(metrics, "encore_scan_images_total 5\n") {
		t.Fatalf("/metrics stale after counter bump:\n%s", metrics)
	}

	snapshot, _ := get(t, srv, "/snapshot")
	var snapDoc struct {
		Version int    `json:"version"`
		Phase   string `json:"phase"`
	}
	if err := json.Unmarshal([]byte(snapshot), &snapDoc); err != nil {
		t.Fatal(err)
	}
	if snapDoc.Version != SnapshotVersion || snapDoc.Phase != "scan" {
		t.Fatalf("/snapshot = %+v", snapDoc)
	}

	if pprofIdx, _ := get(t, srv, "/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", pprofIdx)
	}
}

// TestServerCloseIdempotent checks Close is safe to repeat and on nil.
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still accepting after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
	if nilSrv.Addr() != "" {
		t.Fatal("nil server reported an address")
	}
}

// TestServerBadAddr checks a bind failure is an error, not a panic.
func TestServerBadAddr(t *testing.T) {
	if _, err := NewServer("256.0.0.1:-1", New()); err == nil {
		t.Fatal("want error for an unbindable address")
	}
}

// TestServeStackNoGoroutineLeak is the regression test for the full live
// observability stack: server + sampler + progress reporter all running
// against one recorder, exercised over HTTP, then shut down. The goroutine
// count must return to the baseline — nothing may survive Close/Stop.
func TestServeStackNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	r := New()
	r.SetPhase("scan")
	sampler := NewSampler(time.Millisecond, 32)
	r.AttachSampler(sampler)
	p := NewProgress(io.Discard, "scan", 4, time.Millisecond)
	sampler.SetProgress(p)
	sampler.Start()
	srv, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	r.Add(CounterImagesScanned, 4)
	p.Step(1)
	for i := 0; i < 3; i++ {
		get(t, srv, "/metrics")
		get(t, srv, "/healthz")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	sampler.Stop()
	p.Stop()
	// Drop the client keep-alive connections the fetches opened; their
	// readLoop/writeLoop goroutines are the only legitimate stragglers.
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
