package custom

import (
	"testing"
	"testing/quick"

	"repro/internal/sysimage"
)

// TestCompileExprNeverPanics feeds arbitrary byte soup to the expression
// compiler; it must return an error or an expression, never panic.
func TestCompileExprNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("CompileExpr(%q) panicked: %v", src, r)
			}
		}()
		_, _ = CompileExpr(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalNeverPanics evaluates every compilable fragment built from DSL
// vocabulary against both nil and real environments.
func TestEvalNeverPanics(t *testing.T) {
	img := sysimage.New("x")
	img.AddDir("/a", "root", "root", 0o755)
	fragments := []string{
		"value", "v1 == v2", "!value", "-1 + 2", "size(value) < 10",
		"exists(value) && isDir(value)", "owner(value) == 'root'",
		"matches(value, '.*')", "lower(value) + 'x'",
		"userExists(v1) || groupExists(v2)", "memBytes() > cpuCores()",
		"perm(value) != '0644'", "envVar('PATH') == ''",
	}
	vars := map[string]string{"value": "/a", "v1": "u", "v2": "g"}
	for _, src := range fragments {
		e, err := CompileExpr(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		for _, env := range []*Env{{Vars: vars}, {Vars: vars, Image: img}, {Vars: map[string]string{}}} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("eval %q panicked: %v", src, r)
					}
				}()
				_, _ = e.Eval(env)
			}()
		}
	}
}

// TestParseFileNeverPanics feeds arbitrary section soup to the
// customization-file parser.
func TestParseFileNeverPanics(t *testing.T) {
	seeds := []string{
		"$$TypeDeclaration\n\x00\n",
		"$$Template\n[A:] < [B:]\n",
		"$$TypeOperator\n::::\n",
		"$$TypeAugmentDeclaration\na.b.c d e f\n",
		"$$TypeInference\nX (value: { true }\n",
	}
	for _, src := range seeds {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseFile(%q) panicked: %v", src, r)
				}
			}()
			_, _ = ParseFile(src)
		}()
	}
	f := func(src string) bool {
		defer func() { _ = recover() }()
		_, _ = ParseFile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
