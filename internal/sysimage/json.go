package sysimage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MarshalJSONIndent serializes the image to indented JSON. Map iteration
// order does not matter because encoding/json sorts map keys.
func (im *Image) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(im, "", "  ")
}

// LoadJSON deserializes an image produced by MarshalJSONIndent.
func LoadJSON(data []byte) (*Image, error) {
	var im Image
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("sysimage: decode image: %w", err)
	}
	if im.Files == nil {
		im.Files = make(map[string]*FileMeta)
	}
	if im.Users == nil {
		im.Users = make(map[string]*User)
	}
	if im.Groups == nil {
		im.Groups = make(map[string]*Group)
	}
	if im.Env == nil {
		im.Env = make(map[string]string)
	}
	im.internStrings()
	return &im, nil
}

// SaveDir writes one JSON file per image into dir, creating it if needed.
// File names are "<id>.json".
func SaveDir(dir string, images []*Image) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sysimage: create %s: %w", dir, err)
	}
	for _, im := range images {
		data, err := im.MarshalJSONIndent()
		if err != nil {
			return fmt.Errorf("sysimage: encode %s: %w", im.ID, err)
		}
		name := filepath.Join(dir, im.ID+".json")
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fmt.Errorf("sysimage: write %s: %w", name, err)
		}
	}
	return nil
}

// LoadDir reads every "*.json" image in dir, sorted by file name so corpora
// load deterministically.
func LoadDir(dir string) ([]*Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sysimage: read %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	images := make([]*Image, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("sysimage: read %s: %w", n, err)
		}
		im, err := LoadJSON(data)
		if err != nil {
			return nil, fmt.Errorf("sysimage: %s: %w", n, err)
		}
		images = append(images, im)
	}
	return images, nil
}
